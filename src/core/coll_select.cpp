#include "core/coll_select.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "mpi/world.h"

namespace scaffe::core {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return text;
}

/// "cb-16" -> (true, 16); "cb" -> (true, 8); anything else -> (false, _).
bool parse_hier(const std::string& text, const std::string& prefix, int& chain_size) {
  if (text == prefix) {
    chain_size = 8;
    return true;
  }
  if (text.size() > prefix.size() + 1 && text.compare(0, prefix.size(), prefix) == 0 &&
      text[prefix.size()] == '-') {
    const std::string digits = text.substr(prefix.size() + 1);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      return false;
    }
    const long value = std::strtol(digits.c_str(), nullptr, 10);
    if (value < 2 || value > 1024) return false;
    chain_size = static_cast<int>(value);
    return true;
  }
  return false;
}

}  // namespace

const char* coll_algo_name(CollAlgo algo) noexcept {
  switch (algo) {
    case CollAlgo::Config: return "config";
    case CollAlgo::Tuned: return "tuned";
    case CollAlgo::Binomial: return "binomial";
    case CollAlgo::Chain: return "chain";
    case CollAlgo::CB: return "cb";
    case CollAlgo::CC: return "cc";
    case CollAlgo::Dbt: return "dbt";
    case CollAlgo::Ring: return "ring";
    case CollAlgo::TopoRing: return "topo-ring";
  }
  return "?";
}

CollAlgoChoice coll_algo_from_env() {
  CollAlgoChoice choice;
  const char* raw = std::getenv("SCAFFE_COLL_ALGO");
  if (raw == nullptr || *raw == '\0') return choice;
  const std::string text = lower(raw);
  if (text == "config") {
    choice.algo = CollAlgo::Config;
  } else if (text == "tuned") {
    choice.algo = CollAlgo::Tuned;
  } else if (text == "binomial" || text == "bin") {
    choice.algo = CollAlgo::Binomial;
  } else if (text == "chain") {
    choice.algo = CollAlgo::Chain;
  } else if (parse_hier(text, "cb", choice.chain_size)) {
    choice.algo = CollAlgo::CB;
  } else if (parse_hier(text, "cc", choice.chain_size)) {
    choice.algo = CollAlgo::CC;
  } else if (text == "dbt") {
    choice.algo = CollAlgo::Dbt;
  } else if (text == "ring") {
    choice.algo = CollAlgo::Ring;
  } else if (text == "topo-ring" || text == "topo_ring" || text == "toporing") {
    choice.algo = CollAlgo::TopoRing;
  } else {
    throw mpi::ConfigError("SCAFFE_COLL_ALGO", raw,
                           "is not a collective algorithm (expected config, tuned, "
                           "binomial, chain, cb[-k], cc[-k], dbt, ring, or topo-ring)");
  }
  return choice;
}

CollAlgoChoice resolve_coll_algo(const ScaffeConfig& config) {
  CollAlgoChoice choice = coll_algo_from_env();
  if (choice.algo == CollAlgo::Config) {
    choice.algo = config.coll_algo;
    choice.chain_size = config.reduce.chain_size;
  }
  return choice;
}

net::ClusterSpec tuning_cluster_for(int nranks) {
  for (const net::ClusterSpec& spec :
       {net::ClusterSpec::cluster_b(), net::ClusterSpec::cluster_a(),
        net::ClusterSpec::multi_rail_fat_tree()}) {
    if (nranks <= spec.total_gpus()) return spec;
  }
  throw std::runtime_error("coll_select: no built-in cluster preset fits " +
                           std::to_string(nranks) + " ranks");
}

const coll::TuningTable& tuned_table_for(const net::ClusterSpec& cluster, int nranks) {
  static std::mutex mutex;
  static std::map<std::pair<std::string, int>, coll::TuningTable> cache;
  std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(cluster.name, nranks);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, coll::hr_tune(cluster, nranks, coll::ExecPolicy::hr_gdr(),
                                         coll::extended_candidates()))
             .first;
  }
  return it->second;
}

const coll::TuningTable& tuned_table_for(int nranks) {
  return tuned_table_for(tuning_cluster_for(nranks), nranks);
}

}  // namespace scaffe::core
