#include "core/perf_model.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "coll/algorithms.h"
#include "coll/dbt.h"
#include "coll/sim_executor.h"
#include "coll/topo_ring.h"
#include "coll/tuner.h"
#include "core/bucket_planner.h"
#include "core/coll_select.h"
#include "data/backend.h"
#include "net/cost_model.h"
#include "net/topology.h"

namespace scaffe::core {

namespace {

/// The schedule family the model charges for collectives. CollAlgo::Ring has
/// no rooted form, so rooted reduces/bcasts under it keep the Config path.
coll::Schedule model_reduce_schedule(const TrainPerfConfig& config, std::size_t count) {
  switch (config.coll_algo) {
    case CollAlgo::Tuned:
      return coll::hr_tuned_reduce(tuned_table_for(config.cluster, config.gpus),
                                   config.gpus, count);
    case CollAlgo::Binomial:
      return coll::binomial_reduce(config.gpus, 0, count);
    case CollAlgo::Chain:
      return coll::chain_reduce(config.gpus, 0, count, config.reduce.chunks);
    case CollAlgo::Dbt:
      return coll::dbt_reduce(config.gpus, 0, count);
    case CollAlgo::TopoRing:
      return coll::topo_ring_reduce(net::Topology(config.cluster, config.gpus), 0, count,
                                    config.reduce.chunks);
    case CollAlgo::CB:
    case CollAlgo::CC:
    case CollAlgo::Ring:
    case CollAlgo::Config:
      break;
  }
  ReduceAlgo algo = config.reduce;
  if (config.coll_algo == CollAlgo::CB) algo = ReduceAlgo::cb(config.reduce.chain_size);
  if (config.coll_algo == CollAlgo::CC) algo = ReduceAlgo::cc(config.reduce.chain_size);
  if (algo.hierarchical && config.gpus > algo.chain_size) {
    return coll::hierarchical_reduce(config.gpus, count, algo.chain_size, algo.lower,
                                     algo.upper, algo.chunks);
  }
  if (algo.hierarchical && config.gpus > 2) {
    return coll::chain_reduce(config.gpus, 0, count, algo.chunks);
  }
  return coll::binomial_reduce(config.gpus, 0, count);
}

/// Reduce-to-root latency for `count` floats under the config's algorithm.
TimeNs reduce_latency(const TrainPerfConfig& config, std::size_t count) {
  if (count == 0 || config.gpus < 2) return 0;
  const coll::Schedule schedule = model_reduce_schedule(config, count);
  return net::CostModel(config.cluster).collective_setup(config.gpus) +
         coll::simulate_schedule(schedule, config.cluster, config.comm_policy).root_finish;
}

/// Broadcast-from-root latency for `count` floats (binomial by default; the
/// DBT and topo-ring families bring their own bcast shape).
TimeNs bcast_latency(const TrainPerfConfig& config, std::size_t count) {
  if (count == 0 || config.gpus < 2) return 0;
  coll::Schedule schedule;
  switch (config.coll_algo) {
    case CollAlgo::Dbt:
      schedule = coll::dbt_bcast(config.gpus, 0, count);
      break;
    case CollAlgo::TopoRing:
      schedule = coll::topo_ring_bcast(net::Topology(config.cluster, config.gpus), 0,
                                       count, config.reduce.chunks);
      break;
    default:
      schedule = coll::binomial_bcast(config.gpus, 0, count);
      break;
  }
  return net::CostModel(config.cluster).collective_setup(config.gpus) +
         coll::simulate_schedule(schedule, config.cluster, config.comm_policy).total;
}

double reader_aggregate_sps(const TrainPerfConfig& config, int readers,
                            std::size_t sample_bytes) {
  // The throughput models live on the backends; instantiate the matching one.
  const data::SyntheticImageDataset dataset = data::SyntheticImageDataset::imagenet_like();
  switch (config.reader) {
    case ReaderBackendKind::LmdbSim: {
      data::LmdbBackend backend(dataset, config.cluster.storage);
      return backend.aggregate_samples_per_sec(readers, sample_bytes);
    }
    case ReaderBackendKind::LustreImageData: {
      data::ImageDataBackend backend(dataset, config.cluster.storage);
      return backend.aggregate_samples_per_sec(readers, sample_bytes);
    }
  }
  return 0.0;
}

}  // namespace

TimeNs aggregation_latency(const TrainPerfConfig& config) {
  return reduce_latency(config, config.model.param_count());
}

IterationBreakdown simulate_training_iteration(const TrainPerfConfig& config) {
  if (config.gpus < 1) throw std::runtime_error("perf model: gpus must be >= 1");
  if (config.gpus > config.cluster.total_gpus()) {
    throw std::runtime_error("perf model: more GPUs than the cluster has");
  }

  IterationBreakdown out;
  const net::CostModel cost(config.cluster);
  const models::ModelDesc& model = config.model;

  out.batch_per_gpu = config.scaling == Scaling::Strong
                          ? config.global_batch / config.gpus
                          : config.global_batch;
  if (out.batch_per_gpu < 1) {
    out.oom = true;  // degenerate: fewer samples than solvers
    return out;
  }
  const int global_batch = config.scaling == Scaling::Strong
                               ? config.global_batch
                               : config.global_batch * config.gpus;

  // --- GPU memory accounting (Figure 8's missing points) --------------------
  // Parameters + gradients + momentum + one packed comm buffer, plus
  // activations (data + diff) scaled by the local batch.
  const std::size_t static_bytes = model.param_bytes() * 4;
  const std::size_t activation_bytes =
      model.activation_bytes_per_sample() * static_cast<std::size_t>(out.batch_per_gpu);
  if (static_bytes + activation_bytes > config.cluster.gpu.mem_bytes) {
    out.oom = true;
    return out;
  }

  // --- per-layer compute ------------------------------------------------------
  const std::size_t num_layers = model.layers.size();
  std::vector<TimeNs> fwd(num_layers);
  std::vector<TimeNs> bwd(num_layers);
  for (std::size_t li = 0; li < num_layers; ++li) {
    fwd[li] = cost.gpu_compute(model.layers[li].fwd_flops * out.batch_per_gpu,
                               out.batch_per_gpu);
    bwd[li] = cost.gpu_compute(model.layers[li].bwd_flops * out.batch_per_gpu,
                               out.batch_per_gpu);
    out.forward += fwd[li];
    out.backward += bwd[li];
  }

  if (config.aggregation == Aggregation::AllreduceSgd) {
    // No propagation phase; gradients allreduce after backward, every rank
    // updates locally.
    const std::size_t count = model.param_count();
    if (config.gpus >= 2) {
      coll::Schedule fused;  // single-schedule allreduce, when the family has one
      if (config.coll_algo == CollAlgo::Dbt) {
        fused = coll::dbt_allreduce(config.gpus, count);
      } else if (config.coll_algo == CollAlgo::TopoRing) {
        fused = coll::topo_ring_allreduce(net::Topology(config.cluster, config.gpus),
                                          count);
      } else if ((config.coll_algo == CollAlgo::Ring || config.ring_allreduce) &&
                 count >= static_cast<std::size_t>(config.gpus)) {
        fused = coll::ring_allreduce(config.gpus, count);
      }
      if (!fused.programs.empty()) {
        out.aggregation_exposed =
            cost.collective_setup(config.gpus) +
            coll::simulate_schedule(fused, config.cluster, config.comm_policy).total;
      } else {
        out.aggregation_exposed =
            reduce_latency(config, count) + bcast_latency(config, count);
      }
    }
    out.update = cost.kernel_launch() +
                 static_cast<TimeNs>(static_cast<double>(model.param_bytes()) * 4.0 /
                                     (config.cluster.gpu.mem_bw_gbs * 1e9) * 1e9);
    const int readers_ar = config.readers > 0 ? config.readers : config.gpus;
    const std::size_t sample_bytes_ar =
        config.sample_bytes > 0
            ? config.sample_bytes
            : data::SyntheticImageDataset::imagenet_like().sample_bytes();
    const double sps_ar = reader_aggregate_sps(config, readers_ar, sample_bytes_ar);
    const TimeNs busy_ar =
        out.forward + out.backward + out.aggregation_exposed + out.update;
    if (sps_ar <= 0.0) {
      out.reader_failed = true;
      out.total = busy_ar;
      return out;
    }
    const TimeNs read_time_ar =
        static_cast<TimeNs>(static_cast<double>(global_batch) / sps_ar * 1e9);
    out.reader_stall = std::max<TimeNs>(0, read_time_ar - busy_ar);
    out.total = busy_ar + out.reader_stall;
    out.samples_per_sec = static_cast<double>(global_batch) / util::to_sec(out.total);
    out.training_time_sec = util::to_sec(out.total) * config.iterations;
    return out;
  }

  // --- data propagation --------------------------------------------------------
  switch (config.variant) {
    case Variant::SCB: {
      out.propagation_exposed = bcast_latency(config, model.param_count());
      break;
    }
    case Variant::SCOB:
    case Variant::SCOBR: {
      // Per-layer Ibcasts; the root injects them back-to-back, and layer li's
      // forward starts once both layer li-1 finished and bcast li arrived.
      TimeNs bcast_done = 0;
      TimeNs fwd_clock = 0;
      TimeNs compute_only = 0;
      for (std::size_t li = 0; li < num_layers; ++li) {
        const TimeNs this_bcast = bcast_latency(config, model.layers[li].param_count);
        const TimeNs bcast_start = config.naive_nbc
                                       ? std::max(bcast_done, compute_only)
                                       : bcast_done;
        if (config.naive_nbc) {
          // Figure 4: bcast li+? issued only one layer ahead — injection
          // cannot run further ahead than the compute frontier.
          bcast_done = std::max(bcast_done, compute_only) + this_bcast;
        } else {
          // Figure 5: all Ibcasts posted at the start; the progression
          // pipeline keeps injecting.
          bcast_done += this_bcast;
        }
        const TimeNs fwd_start = std::max(fwd_clock, bcast_done);
        fwd_clock = fwd_start + fwd[li];
        compute_only += fwd[li];
        if (config.capture_timeline) {
          if (this_bcast > 0) {
            out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Bcast,
                                                static_cast<int>(li), bcast_start,
                                                bcast_done});
          }
          out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Forward,
                                              static_cast<int>(li), fwd_start, fwd_clock});
        }
      }
      out.propagation_exposed = fwd_clock - out.forward;
      break;
    }
  }

  // --- gradient aggregation -----------------------------------------------------
  switch (config.variant) {
    case Variant::SCB:
    case Variant::SCOB: {
      out.aggregation_exposed = reduce_latency(config, model.param_count());
      break;
    }
    case Variant::SCOBR: {
      if (config.fusion_bucket_bytes > 0) {
        // Bucket fusion: one reduce per bucket instead of per layer — the
        // same reverse-layer packing the runtime BucketPlanner performs, so
        // fewer collective_setup charges. Bucket b becomes ready when
        // backward finishes its first (lowest) member layer.
        std::vector<std::pair<std::size_t, std::size_t>> ranges(num_layers);
        std::size_t offset = 0;
        for (std::size_t li = 0; li < num_layers; ++li) {
          ranges[li] = {offset, model.layers[li].param_count};
          offset += model.layers[li].param_count;
        }
        const BucketPlanner planner(ranges, config.fusion_bucket_bytes);

        std::vector<TimeNs> bwd_done(num_layers);
        TimeNs bwd_clock = 0;
        for (std::size_t li = num_layers; li-- > 0;) {
          const TimeNs bwd_start = bwd_clock;
          bwd_clock += bwd[li];
          bwd_done[li] = bwd_clock;
          if (config.capture_timeline) {
            out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Backward,
                                                static_cast<int>(li), bwd_start, bwd_clock});
          }
        }
        TimeNs reduce_clock = 0;
        const auto& buckets = planner.buckets();
        for (std::size_t b = buckets.size(); b-- > 0;) {
          if (buckets[b].elems == 0) continue;
          const TimeNs reduce_start =
              std::max(reduce_clock, bwd_done[buckets[b].first_layer]);
          const TimeNs this_reduce = reduce_latency(config, buckets[b].elems);
          reduce_clock = reduce_start + this_reduce;
          if (config.capture_timeline) {
            out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Reduce,
                                                static_cast<int>(buckets[b].first_layer),
                                                reduce_start, reduce_clock});
          }
        }
        out.aggregation_exposed = reduce_clock - out.backward;
        break;
      }
      // Helper-thread overlap: reduce of layer li starts when its backward
      // completed and the previous (later-layer) reduce finished.
      TimeNs bwd_clock = 0;
      TimeNs reduce_clock = 0;
      for (std::size_t li = num_layers; li-- > 0;) {
        const TimeNs bwd_start = bwd_clock;
        bwd_clock += bwd[li];
        const TimeNs reduce_start = std::max(reduce_clock, bwd_clock);
        const TimeNs this_reduce = reduce_latency(config, model.layers[li].param_count);
        reduce_clock = reduce_start + this_reduce;
        if (config.capture_timeline) {
          out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Backward,
                                              static_cast<int>(li), bwd_start, bwd_clock});
          if (this_reduce > 0) {
            out.timeline.push_back(PhaseSegment{PhaseSegment::Kind::Reduce,
                                                static_cast<int>(li), reduce_start,
                                                reduce_clock});
          }
        }
      }
      out.aggregation_exposed = reduce_clock - out.backward;
      break;
    }
  }

  // --- root update -----------------------------------------------------------------
  // Momentum SGD touches 4 streams of param-sized data.
  out.update = cost.kernel_launch() +
               static_cast<TimeNs>(static_cast<double>(model.param_bytes()) * 4.0 /
                                   (config.cluster.gpu.mem_bw_gbs * 1e9) * 1e9);

  // --- data readers -------------------------------------------------------------------
  const int readers = config.readers > 0 ? config.readers : config.gpus;
  const std::size_t sample_bytes =
      config.sample_bytes > 0 ? config.sample_bytes
                              : data::SyntheticImageDataset::imagenet_like().sample_bytes();
  const double sps = reader_aggregate_sps(config, readers, sample_bytes);
  const TimeNs busy = out.propagation_exposed + out.forward + out.backward +
                      out.aggregation_exposed + out.update;
  if (sps <= 0.0) {
    out.reader_failed = true;
    out.total = busy;
    return out;
  }
  const TimeNs read_time =
      static_cast<TimeNs>(static_cast<double>(global_batch) / sps * 1e9);
  out.reader_stall = std::max<TimeNs>(0, read_time - busy);

  out.total = busy + out.reader_stall;
  out.samples_per_sec = static_cast<double>(global_batch) / util::to_sec(out.total);
  out.training_time_sec = util::to_sec(out.total) * config.iterations;
  return out;
}

}  // namespace scaffe::core
