// FIFO counting resource (semaphore) for modelling shared hardware: a PCIe
// lane, an InfiniBand HCA, a GPU copy engine. Processes `co_await
// res.acquire(n)` and must `release(n)` when done; `ScopedHold` automates the
// release. FIFO ordering makes contention deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>

#include "sim/engine.h"

namespace scaffe::sim {

class Resource {
 public:
  Resource(Engine& engine, std::int64_t capacity) noexcept
      : engine_(&engine), capacity_(capacity), available_(capacity) {
    assert(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::int64_t capacity() const noexcept { return capacity_; }
  std::int64_t available() const noexcept { return available_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  struct Waiter {
    std::coroutine_handle<> handle;
    std::int64_t amount = 0;
  };

  struct AcquireAwaiter {
    Resource* resource;
    Waiter waiter;

    bool await_ready() noexcept {
      // FIFO: even if capacity is free, queued waiters go first. The grant
      // is debited immediately so that concurrent release cascades can never
      // oversubscribe the capacity.
      if (resource->waiters_.empty() && resource->available_ >= waiter.amount) {
        resource->available_ -= waiter.amount;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter.handle = h;
      resource->waiters_.push_back(&waiter);
    }
    void await_resume() const noexcept {}
  };

  /// Awaitable acquisition of `amount` units (FIFO among waiters).
  AcquireAwaiter acquire(std::int64_t amount = 1) noexcept {
    assert(amount > 0 && amount <= capacity_);
    return AcquireAwaiter{this, Waiter{{}, amount}};
  }

  /// Returns `amount` units and wakes waiters whose requests now fit.
  void release(std::int64_t amount = 1) {
    available_ += amount;
    assert(available_ <= capacity_);
    wake_ready();
  }

 private:
  void wake_ready() {
    // Wake in FIFO order while the head request fits; each grant debits the
    // capacity immediately (before the waiter resumes).
    while (!waiters_.empty() && available_ >= waiters_.front()->amount) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      available_ -= waiter->amount;
      engine_->schedule(waiter->handle, 0);
    }
  }

  Engine* engine_;
  std::int64_t capacity_;
  std::int64_t available_;
  std::deque<Waiter*> waiters_;
};

/// RAII helper usable inside coroutines:
///   { auto hold = co_await ScopedHold::acquire(res, n); ... }  // releases
class ScopedHold {
 public:
  ScopedHold() = default;
  ScopedHold(Resource& resource, std::int64_t amount) noexcept
      : resource_(&resource), amount_(amount) {}
  ScopedHold(ScopedHold&& other) noexcept
      : resource_(std::exchange(other.resource_, nullptr)), amount_(other.amount_) {}
  ScopedHold& operator=(ScopedHold&& other) noexcept {
    if (this != &other) {
      reset();
      resource_ = std::exchange(other.resource_, nullptr);
      amount_ = other.amount_;
    }
    return *this;
  }
  ScopedHold(const ScopedHold&) = delete;
  ScopedHold& operator=(const ScopedHold&) = delete;
  ~ScopedHold() { reset(); }

  void reset() {
    if (resource_) {
      resource_->release(amount_);
      resource_ = nullptr;
    }
  }

 private:
  Resource* resource_ = nullptr;
  std::int64_t amount_ = 0;
};

}  // namespace scaffe::sim
