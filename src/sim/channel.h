// Unbounded mailbox channel for simulation processes.
//
// `send` is a plain call (never suspends); `recv` is awaited and suspends the
// receiving process until a value is available. Values are delivered at the
// simulated time of the send (the engine schedules the receiver at `now`).
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.h"

namespace scaffe::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) noexcept : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; wakes the longest-waiting receiver, if any.
  void send(T value) {
    if (!waiters_.empty()) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->value = std::move(value);
      engine_->schedule(waiter->handle, 0);
      return;
    }
    queue_.push_back(std::move(value));
  }

  /// Non-suspending receive; returns nullopt when the queue is empty.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  std::size_t pending() const noexcept { return queue_.size(); }
  std::size_t waiting_receivers() const noexcept { return waiters_.size(); }

  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };

  struct RecvAwaiter {
    Channel* channel;
    Waiter waiter;

    bool await_ready() noexcept {
      if (auto value = channel->try_recv()) {
        waiter.value = std::move(value);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      waiter.handle = h;
      channel->waiters_.push_back(&waiter);
    }
    T await_resume() { return std::move(*waiter.value); }
  };

  /// Awaitable receive: `T v = co_await ch.recv();`
  RecvAwaiter recv() noexcept { return RecvAwaiter{this, {}}; }

 private:
  Engine* engine_;
  std::deque<T> queue_;
  std::deque<Waiter*> waiters_;
};

}  // namespace scaffe::sim
