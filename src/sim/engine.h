// Discrete-event simulation engine with C++20 coroutine processes.
//
// The engine owns a time-ordered event queue of suspended coroutines. A
// simulation "process" is a `Task` coroutine that awaits `engine.delay(dt)`
// (advance simulated time), channel receives, resource acquisitions, or child
// tasks. Events at equal timestamps run in FIFO (insertion) order, so every
// simulation is exactly deterministic.
//
//   sim::Engine eng;
//   eng.spawn([](sim::Engine& e) -> sim::Task {
//     co_await e.delay(5 * util::kUs);
//     ...
//   }(eng));
//   eng.run();           // drains all events
//   eng.now();           // final simulated time
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <utility>
#include <vector>

#include "util/duration.h"

namespace scaffe::sim {

using util::TimeNs;

class Engine;

/// A lazily-started simulation coroutine. `co_await`-ing a Task starts it and
/// resumes the awaiter when it completes (possibly after simulated delays).
/// Top-level tasks are handed to Engine::spawn, which owns their lifetime.
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation;  // parent, if co_awaited
    Engine* engine = nullptr;              // set for spawned root tasks
    std::exception_ptr error;
    bool done = false;

    Task get_return_object() noexcept { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.promise().done; }

  /// Awaiting a Task starts it immediately (symmetric transfer) and resumes
  /// the awaiter at the simulated time the child completes. Rethrows any
  /// exception the child raised.
  struct Awaiter {
    Handle child;
    bool await_ready() const noexcept { return !child || child.promise().done; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      child.promise().continuation = parent;
      return child;
    }
    void await_resume() const {
      if (child && child.promise().error) std::rethrow_exception(child.promise().error);
    }
  };
  Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

  Handle release() noexcept { return std::exchange(handle_, {}); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

/// The event loop: a priority queue of (time, seq, coroutine) resumptions.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  TimeNs now() const noexcept { return now_; }

  /// Takes ownership of a root task and schedules its start at now().
  void spawn(Task task);

  /// Schedules a raw coroutine resumption after `dt` (used by awaitables).
  void schedule(std::coroutine_handle<> h, TimeNs dt = 0);

  /// Awaitable that suspends the caller for `dt` of simulated time.
  struct DelayAwaiter {
    Engine* engine;
    TimeNs dt;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const { engine->schedule(h, dt); }
    void await_resume() const noexcept {}
  };
  DelayAwaiter delay(TimeNs dt) noexcept {
    assert(dt >= 0);
    return DelayAwaiter{this, dt};
  }

  /// Runs until the event queue drains. Rethrows the first root-task error.
  void run();

  /// Runs while events exist with time <= limit. Returns true if drained.
  bool run_until(TimeNs limit);

  /// Number of events processed so far (diagnostic/determinism checks).
  std::uint64_t events_processed() const noexcept { return events_processed_; }

  /// Records an error raised by a detached/root task; rethrown from run().
  void report_error(std::exception_ptr error) noexcept {
    if (!first_error_) first_error_ = error;
  }

 private:
  struct Item {
    TimeNs time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Item& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void step(const Item& item);
  void drain_finished_roots();

  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue_;
  std::vector<Task> roots_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::exception_ptr first_error_;
};

inline std::coroutine_handle<> Task::FinalAwaiter::await_suspend(Handle h) noexcept {
  auto& promise = h.promise();
  promise.done = true;
  if (promise.continuation) return promise.continuation;
  if (promise.engine && promise.error) promise.engine->report_error(promise.error);
  return std::noop_coroutine();
}

}  // namespace scaffe::sim
