#include "sim/engine.h"

#include <algorithm>

namespace scaffe::sim {

Engine::~Engine() = default;

void Engine::spawn(Task task) {
  if (!task.valid()) return;
  Task::Handle handle = task.release();
  handle.promise().engine = this;
  roots_.emplace_back(Task(handle));
  schedule(handle, 0);
}

void Engine::schedule(std::coroutine_handle<> h, TimeNs dt) {
  queue_.push(Item{now_ + dt, seq_++, h});
}

void Engine::step(const Item& item) {
  now_ = item.time;
  ++events_processed_;
  item.handle.resume();
}

void Engine::drain_finished_roots() {
  // Completed root tasks keep their frames until the engine drains them; this
  // bounds memory when a long simulation spawns many short-lived processes.
  roots_.erase(std::remove_if(roots_.begin(), roots_.end(),
                              [](const Task& t) { return t.done(); }),
               roots_.end());
}

void Engine::run() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    step(item);
    if (first_error_) break;
    if (events_processed_ % 4096 == 0) drain_finished_roots();
  }
  drain_finished_roots();
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

bool Engine::run_until(TimeNs limit) {
  while (!queue_.empty() && queue_.top().time <= limit) {
    Item item = queue_.top();
    queue_.pop();
    step(item);
    if (first_error_) break;
  }
  drain_finished_roots();
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (queue_.empty()) return true;
  now_ = std::max(now_, limit);
  return false;
}

}  // namespace scaffe::sim
