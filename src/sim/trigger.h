// One-shot broadcast event ("condition flag") and a countdown latch.
//
// Trigger mirrors the helper-thread C++ condition-flag handshake the paper's
// SC-OBR design uses; Latch joins a fan-out of concurrent processes.
#pragma once

#include <cassert>
#include <coroutine>
#include <vector>

#include "sim/engine.h"

namespace scaffe::sim {

/// One-shot event: waiters suspend until fire(); waits after fire() pass.
class Trigger {
 public:
  explicit Trigger(Engine& engine) noexcept : engine_(&engine) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const noexcept { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto handle : waiters_) engine_->schedule(handle, 0);
    waiters_.clear();
  }

  struct WaitAwaiter {
    Trigger* trigger;
    bool await_ready() const noexcept { return trigger->fired_; }
    void await_suspend(std::coroutine_handle<> h) { trigger->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  WaitAwaiter wait() noexcept { return WaitAwaiter{this}; }

 private:
  Engine* engine_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: `count_down()` n times releases all waiters.
class Latch {
 public:
  Latch(Engine& engine, std::int64_t count) noexcept
      : trigger_(engine), remaining_(count) {
    assert(count >= 0);
    if (remaining_ == 0) trigger_.fire();
  }

  void count_down(std::int64_t n = 1) {
    remaining_ -= n;
    assert(remaining_ >= 0);
    if (remaining_ == 0) trigger_.fire();
  }

  Trigger::WaitAwaiter wait() noexcept { return trigger_.wait(); }
  std::int64_t remaining() const noexcept { return remaining_; }

 private:
  Trigger trigger_;
  std::int64_t remaining_;
};

}  // namespace scaffe::sim
