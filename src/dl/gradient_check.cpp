#include "dl/gradient_check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.h"

namespace scaffe::dl {

namespace {

/// Probes d(loss)/d(values[k]) for sampled k and compares against the
/// analytic diff produced by one backward pass.
GradientCheckResult check_span(Net& net, std::span<float> values, std::span<const float> analytic,
                               const std::string& what, double epsilon, double tolerance,
                               double threshold_floor, int max_probes, util::Rng& rng) {
  GradientCheckResult result;
  if (values.empty()) return result;

  auto probe_at = [&](std::size_t k, double eps) {
    const float saved = values[k];
    values[k] = saved + static_cast<float>(eps);
    const double loss_plus = net.forward();
    values[k] = saved - static_cast<float>(eps);
    const double loss_minus = net.forward();
    values[k] = saved;
    return (loss_plus - loss_minus) / (2.0 * eps);
  };
  auto rel_error = [&](double numeric, double exact) {
    const double scale = std::max({std::fabs(numeric), std::fabs(exact), threshold_floor});
    return std::fabs(numeric - exact) / scale;
  };

  const int probes =
      static_cast<int>(std::min<std::size_t>(values.size(), static_cast<std::size_t>(max_probes)));
  for (int probe = 0; probe < probes; ++probe) {
    const std::size_t k =
        probes == static_cast<int>(values.size())
            ? static_cast<std::size_t>(probe)
            : rng.below(values.size());
    const double exact = analytic[k];
    double numeric = probe_at(k, epsilon);
    double rel = rel_error(numeric, exact);
    if (rel > tolerance) {
      // A large probe step can cross a non-differentiable kink (max-pool
      // argmax or ReLU threshold flips under the perturbation). Re-probe
      // closer to the point before declaring the analytic gradient wrong.
      numeric = probe_at(k, epsilon / 5.0);
      rel = rel_error(numeric, exact);
    }
    if (rel > tolerance) {
      // If the two one-sided derivatives disagree, the point itself sits on
      // a kink: the symmetric difference is meaningless there. Skip the
      // coordinate when the analytic value lies between the one-sided
      // slopes (any subgradient is acceptable).
      const double kink_eps = epsilon / 5.0;
      const float saved = values[k];
      const double f0 = net.forward();
      values[k] = saved + static_cast<float>(kink_eps);
      const double fp = net.forward();
      values[k] = saved - static_cast<float>(kink_eps);
      const double fm = net.forward();
      values[k] = saved;
      const double d_plus = (fp - f0) / kink_eps;
      const double d_minus = (f0 - fm) / kink_eps;
      const double lo = std::min(d_plus, d_minus);
      const double hi = std::max(d_plus, d_minus);
      const double slack = tolerance * std::max({std::fabs(lo), std::fabs(hi), threshold_floor}) +
                           0.5 * (hi - lo);
      if (hi - lo > tolerance * std::max({std::fabs(lo), std::fabs(hi), threshold_floor}) &&
          exact >= lo - slack && exact <= hi + slack) {
        continue;  // kink at the point; the analytic value is a subgradient
      }
    }
    result.max_rel_error = std::max(result.max_rel_error, rel);
    if (rel > tolerance) {
      std::ostringstream detail;
      detail << what << "[" << k << "]: analytic " << exact << " vs numeric " << numeric
             << " (rel " << rel << ")";
      result.ok = false;
      result.detail = detail.str();
      return result;
    }
  }
  return result;
}

}  // namespace

GradientCheckResult check_gradients(Net& net, double epsilon, double tolerance,
                                    double threshold_floor, int max_probes, std::uint64_t seed) {
  util::Rng rng(seed);
  // One clean analytic pass.
  net.zero_param_diffs();
  net.forward();
  net.backward();

  // Snapshot analytic diffs (forward re-runs must not disturb them — they
  // don't, only backward writes diffs).
  GradientCheckResult worst;
  int param_index = 0;
  for (Blob* param : net.params()) {
    GradientCheckResult r =
        check_span(net, param->data(), param->diff(), "param" + std::to_string(param_index),
                   epsilon, tolerance, threshold_floor, max_probes, rng);
    worst.max_rel_error = std::max(worst.max_rel_error, r.max_rel_error);
    if (!r.ok) return r;
    ++param_index;
  }
  return worst;
}

GradientCheckResult check_input_gradients(Net& net, const std::string& input, double epsilon,
                                          double tolerance, double threshold_floor, int max_probes,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  net.zero_param_diffs();
  net.forward();
  net.backward();
  Blob& blob = net.blob(input);
  return check_span(net, blob.data(), blob.diff(), input, epsilon, tolerance, threshold_floor,
                    max_probes, rng);
}

}  // namespace scaffe::dl
