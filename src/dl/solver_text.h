// Text format for SolverConfig — the solver.prototxt moral equivalent.
//
//   base_lr: 0.01
//   momentum: 0.9
//   weight_decay: 0.004
//   lr_policy: step        # or fixed
//   gamma: 0.1
//   step_size: 1000
//   seed: 5
//   clip_gradients: 35
#pragma once

#include <string>

#include "dl/solver.h"

namespace scaffe::dl {

/// Parses the key:value format above; unknown keys raise std::runtime_error
/// (typos in hyper-parameters should never pass silently).
SolverConfig parse_solver_config(const std::string& text);

/// Serializes (round-trips with parse_solver_config).
std::string solver_config_to_text(const SolverConfig& config);

}  // namespace scaffe::dl
