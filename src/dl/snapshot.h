// Parameter snapshots: save/restore a Net's learnable state to a file
// (Caffe's .caffemodel moral equivalent).
//
// Format v2 (crash-safe checkpoints):
//   magic "SCAF" | u32 version=2 | u64 param_count | u64 state_count
//   | i64 iteration | float params[param_count] | float state[state_count]
//   | u32 crc32
// where `state` is the solver's flattened momentum (state_count == 0 for
// parameter-only snapshots) and the CRC-32 covers every byte after the magic
// up to the checksum itself. Writers go through a temp file + atomic rename,
// so a reader never observes a half-written snapshot, and retry with backoff
// on (injected or real) I/O failure.
//
// Format v1 (legacy, still loadable):
//   magic "SCAF" | u32 version=1 | u64 param_count | float params[...]
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dl/net.h"
#include "dl/solver.h"

namespace scaffe::dl {

/// Header of a validated snapshot file.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t param_count = 0;
  std::uint64_t state_count = 0;  // momentum floats; 0 when absent (or v1)
  long iteration = 0;             // 0 for v1 / parameter-only snapshots
};

/// Writes the net's flattened parameters (v2, no solver state). Returns the
/// number of write attempts used (1 = no retry); throws std::runtime_error
/// once the bounded retry budget is exhausted.
int save_params(const Net& net, const std::string& path);

/// Restores parameters saved by save_params or save_solver (v1 or v2);
/// throws on I/O failure, bad magic/version, CRC mismatch, truncation,
/// trailing bytes, or parameter-count mismatch with `net`.
void load_params(Net& net, const std::string& path);

/// Full training checkpoint: parameters + momentum + iteration counter.
/// Restoring it makes a resumed run bitwise identical to an uninterrupted
/// one. Returns the number of write attempts used.
int save_solver(const SgdSolver& solver, const std::string& path);

/// Restores a checkpoint written by save_solver. A v1 or parameter-only v2
/// file also loads: momentum is zeroed and the iteration left at 0.
void load_solver(SgdSolver& solver, const std::string& path);

/// Validates `path` and returns its header, or nullopt if the file is
/// missing or fails any integrity check — the "last good checkpoint" probe
/// recovery uses to pick a resume point without risking a throw.
std::optional<SnapshotInfo> probe_snapshot(const std::string& path) noexcept;

/// Validating header read; throws where probe_snapshot returns nullopt.
SnapshotInfo read_snapshot_info(const std::string& path);

}  // namespace scaffe::dl
