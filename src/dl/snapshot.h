// Parameter snapshots: save/restore a Net's learnable state to a file
// (Caffe's .caffemodel moral equivalent). Binary format:
//   magic "SCAF" | u32 version | u64 param_count | float data...
#pragma once

#include <string>

#include "dl/net.h"

namespace scaffe::dl {

/// Writes the net's flattened parameters; throws std::runtime_error on I/O
/// failure.
void save_params(const Net& net, const std::string& path);

/// Restores parameters saved by save_params; throws on I/O failure, bad
/// magic/version, or parameter-count mismatch with `net`.
void load_params(Net& net, const std::string& path);

}  // namespace scaffe::dl
