// Numerical gradient checking for layer implementations.
#pragma once

#include <string>

#include "dl/net.h"

namespace scaffe::dl {

struct GradientCheckResult {
  bool ok = true;
  double max_rel_error = 0.0;
  std::string detail;  // first offending location, when !ok
};

/// Central-difference check of d(loss)/d(param) for every parameter of `net`
/// (inputs must already be loaded). `epsilon` is the probe step; gradients
/// with |analytic| and |numeric| below `threshold_floor` are compared
/// absolutely. Probes at most `max_probes` randomly-chosen coordinates per
/// parameter blob to keep runtime bounded.
GradientCheckResult check_gradients(Net& net, double epsilon = 1e-3, double tolerance = 2e-2,
                                    double threshold_floor = 1e-4, int max_probes = 40,
                                    std::uint64_t seed = 99);

/// Same check for d(loss)/d(input) of the named input blob.
GradientCheckResult check_input_gradients(Net& net, const std::string& input, double epsilon = 1e-3,
                                          double tolerance = 2e-2, double threshold_floor = 1e-4,
                                          int max_probes = 40, std::uint64_t seed = 99);

}  // namespace scaffe::dl
