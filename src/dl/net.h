// Net: wires layers over named blobs (Section 2.2's Net/Model abstraction).
//
// A NetSpec declares input blobs (filled by the caller / data readers) and an
// ordered list of LayerSpecs; execution follows spec order forward and the
// reverse order backward — exactly Caffe's phase structure that S-Caffe's
// co-designs interleave with communication.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dl/layer.h"
#include "gpu/device.h"

namespace scaffe::dl {

struct NetSpec {
  struct Input {
    std::string name;
    std::vector<int> shape;
  };

  std::string name;
  std::vector<Input> inputs;
  std::vector<LayerSpec> layers;
};

class Net {
 public:
  /// Builds and shapes the network. Identical (spec, seed) pairs produce
  /// bit-identical parameter initializations — the property data-parallel
  /// solver replicas rely on. If `device` is given, parameter and activation
  /// memory is charged against it (OutOfMemoryError on overflow).
  explicit Net(NetSpec spec, std::uint64_t seed = 1, gpu::Device* device = nullptr);
  ~Net();
  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;

  const std::string& name() const noexcept { return spec_.name; }

  /// Looks up a blob by name (inputs, activations); throws if unknown.
  Blob& blob(const std::string& name);

  /// Runs all layers forward; returns the summed loss.
  float forward();

  /// Seeds loss diffs with 1 and runs all layers backward.
  void backward();

  // --- per-layer execution (the fine-grain workflow S-Caffe's SC-OB/SC-OBR
  // co-designs interleave with communication, Section 4.2/4.3) --------------

  /// Runs layer `i` forward; returns its loss contribution (0 if not a loss).
  float forward_layer(std::size_t i);

  /// Runs layer `i` backward (seeds the loss diff first when it is a loss
  /// layer; skips Accuracy).
  void backward_layer(std::size_t i);

  /// Learnable parameter blobs in deterministic (layer, param) order.
  const std::vector<Blob*>& params() const noexcept { return params_; }

  /// Total learnable parameter count.
  std::size_t param_count() const noexcept { return param_count_; }

  /// (offset, count) of each layer's parameter segment within the flattened
  /// parameter vector, in layer order. Layers without parameters contribute
  /// (offset, 0). This is the packed_comm_buffer layout S-Caffe's per-layer
  /// multi-stage Ibcast/reduce schemes operate on.
  const std::vector<std::pair<std::size_t, std::size_t>>& layer_param_ranges() const noexcept {
    return layer_ranges_;
  }

  std::size_t num_layers() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  // --- packed-buffer access (gradient aggregation / data propagation) -------
  void flatten_params(std::span<float> out) const;
  void unflatten_params(std::span<const float> in);
  void flatten_diffs(std::span<float> out) const;
  void unflatten_diffs(std::span<const float> in);

  /// Per-layer segment views: `out`/`in` must be exactly the layer's segment
  /// (layer_param_ranges()[i].second floats).
  void flatten_layer_params(std::size_t i, std::span<float> out) const;
  void unflatten_layer_params(std::size_t i, std::span<const float> in);
  void flatten_layer_diffs(std::size_t i, std::span<float> out) const;
  void unflatten_layer_diffs(std::size_t i, std::span<const float> in);
  void scale_diffs(float factor);
  void zero_param_diffs();

  /// Propagates the iteration counter to stochastic layers (dropout masks).
  void set_iteration(long iteration);

  /// Device-memory footprint charged at construction (0 without a device).
  std::size_t charged_bytes() const noexcept { return charged_bytes_; }

 private:
  NetSpec spec_;
  gpu::Device* device_ = nullptr;
  std::size_t charged_bytes_ = 0;

  std::map<std::string, std::unique_ptr<Blob>> blobs_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::vector<Blob*>> layer_bottoms_;
  std::vector<std::vector<Blob*>> layer_tops_;
  std::vector<Blob*> params_;
  std::vector<std::pair<std::size_t, std::size_t>> layer_ranges_;
  std::size_t param_count_ = 0;
};

}  // namespace scaffe::dl
