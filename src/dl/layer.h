// Layer interface and specs, Caffe-style.
//
// A LayerSpec names its bottom (input) and top (output) blobs; a Net wires
// layers together by blob name in spec order. Layers own their learnable
// parameter blobs (weights/biases) whose diffs the solver aggregates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dl/blob.h"
#include "util/rng.h"

namespace scaffe::dl {

enum class LayerType {
  InnerProduct,
  Convolution,
  Pooling,
  ReLU,
  Dropout,
  Softmax,
  SoftmaxWithLoss,
  Accuracy,
  Concat,
  LRN,
  Split,
  Sigmoid,
  TanH,
  EltwiseSum,
};

const char* layer_type_name(LayerType type) noexcept;

enum class PoolMethod { Max, Ave };

/// Convolution implementation: Caffe's im2col + GEMM lowering (the default —
/// blocked SGEMM over the shared thread pool), or the direct triple-loop
/// reference (identical math, different op order).
enum class ConvImpl { Direct, Im2colGemm };

struct LayerSpec {
  std::string name;
  LayerType type = LayerType::ReLU;
  std::vector<std::string> bottoms;
  std::vector<std::string> tops;

  // InnerProduct / Convolution
  int num_output = 0;
  // Convolution / Pooling
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  ConvImpl conv_impl = ConvImpl::Im2colGemm;
  // Dropout
  float dropout_ratio = 0.5f;
  // LRN
  int lrn_size = 5;
  float lrn_alpha = 1e-4f;
  float lrn_beta = 0.75f;

  // --- spec builders --------------------------------------------------------
  static LayerSpec inner_product(std::string name, std::string bottom, std::string top,
                                 int num_output);
  static LayerSpec conv(std::string name, std::string bottom, std::string top, int num_output,
                        int kernel, int stride = 1, int pad = 0);
  static LayerSpec pool(std::string name, std::string bottom, std::string top, int kernel,
                        int stride, PoolMethod method = PoolMethod::Max);
  static LayerSpec relu(std::string name, std::string bottom, std::string top);
  static LayerSpec dropout(std::string name, std::string bottom, std::string top, float ratio);
  static LayerSpec softmax(std::string name, std::string bottom, std::string top);
  static LayerSpec softmax_loss(std::string name, std::string bottom, std::string label,
                                std::string top);
  static LayerSpec accuracy(std::string name, std::string bottom, std::string label,
                            std::string top);
  static LayerSpec concat(std::string name, std::vector<std::string> bottoms, std::string top);
  static LayerSpec lrn(std::string name, std::string bottom, std::string top);
  static LayerSpec split(std::string name, std::string bottom, std::vector<std::string> tops);
  static LayerSpec sigmoid(std::string name, std::string bottom, std::string top);
  static LayerSpec tanh(std::string name, std::string bottom, std::string top);
  /// Elementwise sum of equal-shaped bottoms (the residual-connection join).
  static LayerSpec eltwise_sum(std::string name, std::vector<std::string> bottoms,
                               std::string top);

  PoolMethod pool_method = PoolMethod::Max;
};

/// Base layer. Lifecycle: setup() once (shapes tops, allocates params),
/// then forward()/backward() per iteration.
class Layer {
 public:
  explicit Layer(LayerSpec spec) : spec_(std::move(spec)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const LayerSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }

  /// Shapes top blobs from bottoms and initializes parameters.
  virtual void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
                     util::Rng& rng) = 0;

  virtual void forward(const std::vector<Blob*>& bottoms,
                       const std::vector<Blob*>& tops) = 0;

  /// Computes bottom diffs and parameter diffs from top diffs. Parameter
  /// diffs ACCUMULATE (Caffe semantics); the solver zeroes them per batch.
  virtual void backward(const std::vector<Blob*>& tops,
                        const std::vector<Blob*>& bottoms) = 0;

  /// Learnable parameter blobs (possibly empty).
  std::vector<Blob*> params() {
    std::vector<Blob*> out;
    out.reserve(param_blobs_.size());
    for (auto& blob : param_blobs_) out.push_back(blob.get());
    return out;
  }

  /// Whether this layer produces a training loss (contributes to the
  /// objective and seeds the backward pass).
  virtual bool is_loss() const { return false; }

  /// Deterministic per-iteration reseed hook (dropout masks).
  virtual void set_iteration(long iteration) { (void)iteration; }

 protected:
  Blob* add_param(std::vector<int> shape) {
    param_blobs_.push_back(std::make_unique<Blob>(std::move(shape)));
    return param_blobs_.back().get();
  }

  LayerSpec spec_;
  std::vector<std::unique_ptr<Blob>> param_blobs_;
};

/// Builds the layer implementation for a spec.
std::unique_ptr<Layer> make_layer(const LayerSpec& spec);

}  // namespace scaffe::dl
