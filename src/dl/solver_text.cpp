#include "dl/solver_text.h"

#include <sstream>
#include <stdexcept>

namespace scaffe::dl {

SolverConfig parse_solver_config(const std::string& text) {
  SolverConfig config;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;
    std::string value;
    if (!(tokens >> value)) {
      throw std::runtime_error("solver config line " + std::to_string(line_no) +
                               ": missing value for " + key);
    }

    try {
      if (key == "base_lr:") {
        config.base_lr = std::stof(value);
      } else if (key == "momentum:") {
        config.momentum = std::stof(value);
      } else if (key == "weight_decay:") {
        config.weight_decay = std::stof(value);
      } else if (key == "gamma:") {
        config.gamma = std::stof(value);
      } else if (key == "step_size:") {
        config.step_size = std::stol(value);
      } else if (key == "seed:") {
        config.seed = std::stoull(value);
      } else if (key == "clip_gradients:") {
        config.clip_gradients = std::stof(value);
      } else if (key == "lr_policy:") {
        if (value == "fixed") {
          config.lr_policy = SolverConfig::LrPolicy::Fixed;
        } else if (value == "step") {
          config.lr_policy = SolverConfig::LrPolicy::Step;
        } else {
          throw std::runtime_error("unknown lr_policy '" + value + "'");
        }
      } else {
        throw std::runtime_error("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("solver config line " + std::to_string(line_no) +
                               ": bad value '" + value + "' for " + key);
    }
  }
  return config;
}

std::string solver_config_to_text(const SolverConfig& config) {
  std::ostringstream out;
  out << "base_lr: " << config.base_lr << "\n";
  out << "momentum: " << config.momentum << "\n";
  out << "weight_decay: " << config.weight_decay << "\n";
  out << "lr_policy: "
      << (config.lr_policy == SolverConfig::LrPolicy::Fixed ? "fixed" : "step") << "\n";
  out << "gamma: " << config.gamma << "\n";
  out << "step_size: " << config.step_size << "\n";
  out << "seed: " << config.seed << "\n";
  out << "clip_gradients: " << config.clip_gradients << "\n";
  return out.str();
}

}  // namespace scaffe::dl
