// Blocked CPU SGEMM/GEMV for the functional substrate (row-major floats).
//
// Caffe lowers its hot layers (convolution via im2col, inner product) onto a
// multithreaded BLAS; this is that substrate's equivalent. All matrices are
// row-major with tight leading dimensions. Work is split over row blocks of C
// whose boundaries depend only on the problem shape — never on the thread
// count — and each C element accumulates its K products in a fixed order, so
// results are bitwise identical at any SCAFFE_THREADS setting.
#pragma once

namespace scaffe::dl::math {

/// C = alpha * op(A) * op(B) + beta * C.
/// op(A) is M×K (A stored K×M when trans_a), op(B) is K×N (B stored N×K when
/// trans_b), C is M×N. beta == 0 overwrites C without reading it.
void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha, const float* a,
           const float* b, float beta, float* c);

/// y = alpha * op(A) * x + beta * y, with A stored m×n row-major.
/// op(A) is A (y has m elements) or A^T when `trans` (y has n elements).
void gemv(bool trans, int m, int n, float alpha, const float* a, const float* x, float beta,
          float* y);

}  // namespace scaffe::dl::math
