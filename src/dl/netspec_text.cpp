#include "dl/netspec_text.h"

#include <sstream>
#include <vector>

namespace scaffe::dl {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

int to_int(const std::string& token, int line) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw NetSpecParseError(line, "expected integer, got '" + token + "'");
  }
}

float to_float(const std::string& token, int line) {
  try {
    std::size_t used = 0;
    const float value = std::stof(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw NetSpecParseError(line, "expected number, got '" + token + "'");
  }
}

void expect_args(const std::vector<std::string>& tokens, std::size_t count, int line) {
  if (tokens.size() != count) {
    throw NetSpecParseError(line, "'" + tokens[0] + "' expects " + std::to_string(count - 1) +
                                      " arguments, got " + std::to_string(tokens.size() - 1));
  }
}

}  // namespace

NetSpec parse_netspec(const std::string& text) {
  NetSpec spec;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    const std::string& kind = t[0];

    if (kind == "name:") {
      expect_args(t, 2, line_no);
      spec.name = t[1];
    } else if (kind == "input") {
      if (t.size() < 3) throw NetSpecParseError(line_no, "input needs a name and dims");
      NetSpec::Input input;
      input.name = t[1];
      for (std::size_t i = 2; i < t.size(); ++i) input.shape.push_back(to_int(t[i], line_no));
      spec.inputs.push_back(std::move(input));
    } else if (kind == "conv") {
      expect_args(t, 8, line_no);
      spec.layers.push_back(LayerSpec::conv(t[1], t[2], t[3], to_int(t[4], line_no),
                                            to_int(t[5], line_no), to_int(t[6], line_no),
                                            to_int(t[7], line_no)));
    } else if (kind == "pool") {
      expect_args(t, 8, line_no);
      PoolMethod method;
      if (t[4] == "max") {
        method = PoolMethod::Max;
      } else if (t[4] == "ave") {
        method = PoolMethod::Ave;
      } else {
        throw NetSpecParseError(line_no, "pool method must be max or ave");
      }
      LayerSpec pool = LayerSpec::pool(t[1], t[2], t[3], to_int(t[5], line_no),
                                       to_int(t[6], line_no), method);
      pool.pad = to_int(t[7], line_no);
      spec.layers.push_back(std::move(pool));
    } else if (kind == "relu") {
      expect_args(t, 4, line_no);
      spec.layers.push_back(LayerSpec::relu(t[1], t[2], t[3]));
    } else if (kind == "lrn") {
      expect_args(t, 4, line_no);
      spec.layers.push_back(LayerSpec::lrn(t[1], t[2], t[3]));
    } else if (kind == "dropout") {
      expect_args(t, 5, line_no);
      spec.layers.push_back(LayerSpec::dropout(t[1], t[2], t[3], to_float(t[4], line_no)));
    } else if (kind == "ip") {
      expect_args(t, 5, line_no);
      spec.layers.push_back(LayerSpec::inner_product(t[1], t[2], t[3], to_int(t[4], line_no)));
    } else if (kind == "softmax") {
      expect_args(t, 4, line_no);
      spec.layers.push_back(LayerSpec::softmax(t[1], t[2], t[3]));
    } else if (kind == "softmax_loss") {
      expect_args(t, 5, line_no);
      spec.layers.push_back(LayerSpec::softmax_loss(t[1], t[2], t[3], t[4]));
    } else if (kind == "accuracy") {
      expect_args(t, 5, line_no);
      spec.layers.push_back(LayerSpec::accuracy(t[1], t[2], t[3], t[4]));
    } else if (kind == "sigmoid") {
      expect_args(t, 4, line_no);
      spec.layers.push_back(LayerSpec::sigmoid(t[1], t[2], t[3]));
    } else if (kind == "tanh") {
      expect_args(t, 4, line_no);
      spec.layers.push_back(LayerSpec::tanh(t[1], t[2], t[3]));
    } else if (kind == "eltwise_sum") {
      if (t.size() < 5 || t[t.size() - 2] != "->") {
        throw NetSpecParseError(line_no, "eltwise_sum syntax: eltwise_sum name b1 b2 ... -> top");
      }
      spec.layers.push_back(LayerSpec::eltwise_sum(
          t[1], std::vector<std::string>(t.begin() + 2, t.end() - 2), t.back()));
    } else if (kind == "split") {
      if (t.size() < 4) throw NetSpecParseError(line_no, "split needs >=2 tops");
      spec.layers.push_back(
          LayerSpec::split(t[1], t[2], std::vector<std::string>(t.begin() + 3, t.end())));
    } else if (kind == "concat") {
      // concat <name> <bottom...> -> <top>
      if (t.size() < 5 || t[t.size() - 2] != "->") {
        throw NetSpecParseError(line_no, "concat syntax: concat name b1 b2 ... -> top");
      }
      spec.layers.push_back(LayerSpec::concat(
          t[1], std::vector<std::string>(t.begin() + 2, t.end() - 2), t.back()));
    } else {
      throw NetSpecParseError(line_no, "unknown directive '" + kind + "'");
    }
  }
  return spec;
}

std::string netspec_to_text(const NetSpec& spec) {
  std::ostringstream out;
  out << "name: " << spec.name << "\n";
  for (const auto& input : spec.inputs) {
    out << "input " << input.name;
    for (int dim : input.shape) out << ' ' << dim;
    out << "\n";
  }
  for (const LayerSpec& layer : spec.layers) {
    switch (layer.type) {
      case LayerType::Convolution:
        out << "conv " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0] << ' '
            << layer.num_output << ' ' << layer.kernel << ' ' << layer.stride << ' '
            << layer.pad << "\n";
        break;
      case LayerType::Pooling:
        out << "pool " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0] << ' '
            << (layer.pool_method == PoolMethod::Max ? "max" : "ave") << ' ' << layer.kernel
            << ' ' << layer.stride << ' ' << layer.pad << "\n";
        break;
      case LayerType::ReLU:
        out << "relu " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0] << "\n";
        break;
      case LayerType::LRN:
        out << "lrn " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0] << "\n";
        break;
      case LayerType::Dropout:
        out << "dropout " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0]
            << ' ' << layer.dropout_ratio << "\n";
        break;
      case LayerType::InnerProduct:
        out << "ip " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0] << ' '
            << layer.num_output << "\n";
        break;
      case LayerType::Softmax:
        out << "softmax " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0]
            << "\n";
        break;
      case LayerType::SoftmaxWithLoss:
        out << "softmax_loss " << layer.name << ' ' << layer.bottoms[0] << ' '
            << layer.bottoms[1] << ' ' << layer.tops[0] << "\n";
        break;
      case LayerType::Accuracy:
        out << "accuracy " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.bottoms[1]
            << ' ' << layer.tops[0] << "\n";
        break;
      case LayerType::Split:
        out << "split " << layer.name << ' ' << layer.bottoms[0];
        for (const auto& top : layer.tops) out << ' ' << top;
        out << "\n";
        break;
      case LayerType::Concat:
        out << "concat " << layer.name;
        for (const auto& bottom : layer.bottoms) out << ' ' << bottom;
        out << " -> " << layer.tops[0] << "\n";
        break;
      case LayerType::Sigmoid:
        out << "sigmoid " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0]
            << "\n";
        break;
      case LayerType::TanH:
        out << "tanh " << layer.name << ' ' << layer.bottoms[0] << ' ' << layer.tops[0]
            << "\n";
        break;
      case LayerType::EltwiseSum:
        out << "eltwise_sum " << layer.name;
        for (const auto& bottom : layer.bottoms) out << ' ' << bottom;
        out << " -> " << layer.tops[0] << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace scaffe::dl
