#include "dl/snapshot.h"

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "util/bytes.h"
#include "util/fault.h"

namespace scaffe::dl {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'A', 'F'};
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kV1HeaderBytes = 4 + 4 + 8;           // magic, version, count
constexpr std::size_t kV2HeaderBytes = 4 + 4 + 8 + 8 + 8;   // + state_count, iteration
constexpr int kMaxWriteAttempts = 3;
constexpr std::chrono::milliseconds kRetryBackoffBase{2};

void append_raw(std::vector<std::byte>& out, const void* data, std::size_t bytes) {
  if (bytes == 0) return;
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + bytes);
}

template <typename T>
T read_raw(const std::vector<std::byte>& buffer, std::size_t offset) {
  T value{};
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  return value;
}

struct Parsed {
  SnapshotInfo info;
  std::vector<float> params;
  std::vector<float> state;
};

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("load_params: " + what + " in " + path);
}

/// Reads the whole file and validates structure end-to-end: magic, version,
/// exact size (no truncation, no trailing bytes), and — for v2 — the CRC.
Parsed parse_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> buffer(static_cast<std::size_t>(size));
  if (!buffer.empty()) {
    in.read(reinterpret_cast<char*>(buffer.data()), size);
    if (!in) throw std::runtime_error("load_params: read failed for " + path);
  }

  if (buffer.size() < 8) fail(path, "truncated file (no header)");
  if (std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) fail(path, "bad magic");
  const auto version = read_raw<std::uint32_t>(buffer, 4);

  Parsed parsed;
  parsed.info.version = version;
  std::size_t payload_offset = 0;
  std::size_t expected_size = 0;
  if (version == 1) {
    if (buffer.size() < kV1HeaderBytes) fail(path, "truncated v1 header");
    parsed.info.param_count = read_raw<std::uint64_t>(buffer, 8);
    payload_offset = kV1HeaderBytes;
    expected_size = kV1HeaderBytes +
                    static_cast<std::size_t>(parsed.info.param_count) * sizeof(float);
  } else if (version == 2) {
    if (buffer.size() < kV2HeaderBytes) fail(path, "truncated v2 header");
    parsed.info.param_count = read_raw<std::uint64_t>(buffer, 8);
    parsed.info.state_count = read_raw<std::uint64_t>(buffer, 16);
    parsed.info.iteration = static_cast<long>(read_raw<std::int64_t>(buffer, 24));
    payload_offset = kV2HeaderBytes;
    expected_size =
        kV2HeaderBytes +
        static_cast<std::size_t>(parsed.info.param_count + parsed.info.state_count) *
            sizeof(float) +
        sizeof(std::uint32_t);
  } else {
    fail(path, "unsupported version " + std::to_string(version));
  }

  if (buffer.size() < expected_size) fail(path, "truncated file");
  if (buffer.size() > expected_size) fail(path, "trailing bytes");

  if (version == 2) {
    const std::size_t crc_offset = expected_size - sizeof(std::uint32_t);
    const std::uint32_t stored = read_raw<std::uint32_t>(buffer, crc_offset);
    const std::uint32_t computed = util::crc32(
        std::span<const std::byte>(buffer.data() + 4, crc_offset - 4));
    if (stored != computed) fail(path, "CRC mismatch (corrupted snapshot)");
  }

  parsed.params.resize(static_cast<std::size_t>(parsed.info.param_count));
  if (!parsed.params.empty()) {
    std::memcpy(parsed.params.data(), buffer.data() + payload_offset,
                parsed.params.size() * sizeof(float));
  }
  parsed.state.resize(static_cast<std::size_t>(parsed.info.state_count));
  if (!parsed.state.empty()) {
    std::memcpy(parsed.state.data(),
                buffer.data() + payload_offset + parsed.params.size() * sizeof(float),
                parsed.state.size() * sizeof(float));
  }
  return parsed;
}

/// Serializes a v2 snapshot (header | params | state | crc).
std::vector<std::byte> serialize_snapshot(std::span<const float> params,
                                          std::span<const float> state, long iteration) {
  std::vector<std::byte> buffer;
  buffer.reserve(kV2HeaderBytes + (params.size() + state.size()) * sizeof(float) +
                 sizeof(std::uint32_t));
  append_raw(buffer, kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  append_raw(buffer, &version, sizeof(version));
  const std::uint64_t param_count = params.size();
  append_raw(buffer, &param_count, sizeof(param_count));
  const std::uint64_t state_count = state.size();
  append_raw(buffer, &state_count, sizeof(state_count));
  const std::int64_t iter = iteration;
  append_raw(buffer, &iter, sizeof(iter));
  append_raw(buffer, params.data(), params.size_bytes());
  append_raw(buffer, state.data(), state.size_bytes());
  const std::uint32_t crc =
      util::crc32(std::span<const std::byte>(buffer.data() + 4, buffer.size() - 4));
  append_raw(buffer, &crc, sizeof(crc));
  return buffer;
}

/// Crash-safe write: temp file + atomic rename, so `path` always holds a
/// complete snapshot even if the writer dies mid-write; bounded
/// retry-with-backoff absorbs transient (and injected) I/O failures.
int write_snapshot(const std::vector<std::byte>& buffer, const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  std::string last_error;
  for (int attempt = 1; attempt <= kMaxWriteAttempts; ++attempt) {
    if (attempt > 1) std::this_thread::sleep_for(kRetryBackoffBase * (attempt - 1));
    if (util::FaultInjector::instance().next_snapshot_write_fails()) {
      last_error = "injected I/O failure";
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      continue;
    }
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        last_error = "cannot open " + tmp_path;
        continue;
      }
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size()));
      out.flush();
      if (!out) {
        last_error = "write failed for " + tmp_path;
        continue;
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec) {
      last_error = "rename to " + path + " failed: " + ec.message();
      continue;
    }
    return attempt;
  }
  throw std::runtime_error("save_params: giving up on " + path + " after " +
                           std::to_string(kMaxWriteAttempts) + " attempts (" + last_error +
                           ")");
}

}  // namespace

int save_params(const Net& net, const std::string& path) {
  std::vector<float> params(net.param_count());
  net.flatten_params(params);
  return write_snapshot(serialize_snapshot(params, {}, 0), path);
}

void load_params(Net& net, const std::string& path) {
  const Parsed parsed = parse_snapshot(path);
  if (parsed.info.param_count != net.param_count()) {
    throw std::runtime_error("load_params: parameter count mismatch (" + path + " has " +
                             std::to_string(parsed.info.param_count) + ", net needs " +
                             std::to_string(net.param_count()) + ")");
  }
  net.unflatten_params(parsed.params);
}

int save_solver(const SgdSolver& solver, const std::string& path) {
  const Net& net = solver.net();
  std::vector<float> params(net.param_count());
  net.flatten_params(params);
  std::vector<float> state(solver.state_count());
  solver.flatten_state(state);
  return write_snapshot(serialize_snapshot(params, state, solver.iteration()), path);
}

void load_solver(SgdSolver& solver, const std::string& path) {
  const Parsed parsed = parse_snapshot(path);
  if (parsed.info.param_count != solver.net().param_count()) {
    throw std::runtime_error("load_solver: parameter count mismatch (" + path + " has " +
                             std::to_string(parsed.info.param_count) + ", net needs " +
                             std::to_string(solver.net().param_count()) + ")");
  }
  solver.net().unflatten_params(parsed.params);
  if (parsed.info.state_count == 0) {
    // Parameter-only (or v1) snapshot: fresh optimizer state.
    std::vector<float> zeros(solver.state_count(), 0.0f);
    solver.unflatten_state(zeros);
    solver.set_iteration(parsed.info.iteration);
    return;
  }
  if (parsed.info.state_count != solver.state_count()) {
    throw std::runtime_error("load_solver: solver state count mismatch in " + path);
  }
  solver.unflatten_state(parsed.state);
  solver.set_iteration(parsed.info.iteration);
}

SnapshotInfo read_snapshot_info(const std::string& path) { return parse_snapshot(path).info; }

std::optional<SnapshotInfo> probe_snapshot(const std::string& path) noexcept {
  try {
    return read_snapshot_info(path);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace scaffe::dl
