#include "dl/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace scaffe::dl {

namespace {
constexpr char kMagic[4] = {'S', 'C', 'A', 'F'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_params(const Net& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);

  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = net.param_count();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));

  std::vector<float> params(net.param_count());
  net.flatten_params(params);
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(Net& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("load_params: unsupported version in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != net.param_count()) {
    throw std::runtime_error("load_params: parameter count mismatch (" + path + " has " +
                             std::to_string(count) + ", net needs " +
                             std::to_string(net.param_count()) + ")");
  }
  std::vector<float> params(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!in) throw std::runtime_error("load_params: truncated file " + path);
  net.unflatten_params(params);
}

}  // namespace scaffe::dl
