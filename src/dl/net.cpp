#include "dl/net.h"

#include <algorithm>
#include <stdexcept>

namespace scaffe::dl {

Net::Net(NetSpec spec, std::uint64_t seed, gpu::Device* device)
    : spec_(std::move(spec)), device_(device) {
  util::Rng rng(seed);

  for (const auto& input : spec_.inputs) {
    if (blobs_.count(input.name)) throw std::runtime_error("Net: duplicate input " + input.name);
    blobs_[input.name] = std::make_unique<Blob>(input.shape);
  }

  std::map<std::string, int> consumer_count;
  for (const LayerSpec& layer_spec : spec_.layers) {
    auto layer = make_layer(layer_spec);

    std::vector<Blob*> bottoms;
    for (const std::string& name : layer_spec.bottoms) {
      auto it = blobs_.find(name);
      if (it == blobs_.end()) {
        throw std::runtime_error("Net: layer " + layer_spec.name + " needs undefined blob " +
                                 name);
      }
      bottoms.push_back(it->second.get());
      // In-place diff writes assume single consumers (Caffe inserts Split
      // layers for fan-out; we require the spec to avoid it).
      if (layer_spec.type != LayerType::Accuracy && ++consumer_count[name] > 1) {
        throw std::runtime_error("Net: blob " + name +
                                 " consumed by multiple gradient-producing layers");
      }
    }
    std::vector<Blob*> tops;
    for (const std::string& name : layer_spec.tops) {
      if (blobs_.count(name)) {
        throw std::runtime_error("Net: top blob " + name + " already defined");
      }
      blobs_[name] = std::make_unique<Blob>();
      tops.push_back(blobs_[name].get());
    }

    layer->setup(bottoms, tops, rng);

    for (Blob* param : layer->params()) params_.push_back(param);
    layers_.push_back(std::move(layer));
    layer_bottoms_.push_back(std::move(bottoms));
    layer_tops_.push_back(std::move(tops));
  }

  // Flattened layout: layer-major, matching the packed_comm_buffer.
  std::size_t offset = 0;
  std::size_t li = 0;
  for (const auto& layer : layers_) {
    std::size_t layer_count = 0;
    for (const Blob* param : layers_[li]->params()) layer_count += param->count();
    layer_ranges_.emplace_back(offset, layer_count);
    offset += layer_count;
    (void)layer;
    ++li;
  }
  param_count_ = offset;

  if (device_) {
    std::size_t bytes = 0;
    for (const auto& [name, blob] : blobs_) bytes += blob->count() * 2 * sizeof(float);
    for (const Blob* param : params_) bytes += param->count() * 2 * sizeof(float);
    device_->charge(bytes);  // throws OutOfMemoryError if the model won't fit
    charged_bytes_ = bytes;
  }
}

Net::~Net() {
  if (device_ && charged_bytes_ > 0) device_->refund(charged_bytes_);
}

Blob& Net::blob(const std::string& name) {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) throw std::runtime_error("Net: unknown blob " + name);
  return *it->second;
}

float Net::forward() {
  float loss = 0.0f;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(layer_bottoms_[i], layer_tops_[i]);
    if (layers_[i]->is_loss()) loss += layer_tops_[i][0]->data()[0];
  }
  return loss;
}

void Net::backward() {
  for (std::size_t i = layers_.size(); i-- > 0;) {
    if (layers_[i]->is_loss()) {
      layer_tops_[i][0]->diff()[0] = 1.0f;
    }
    if (layers_[i]->spec().type == LayerType::Accuracy) continue;
    layers_[i]->backward(layer_tops_[i], layer_bottoms_[i]);
  }
}

float Net::forward_layer(std::size_t i) {
  layers_[i]->forward(layer_bottoms_[i], layer_tops_[i]);
  return layers_[i]->is_loss() ? layer_tops_[i][0]->data()[0] : 0.0f;
}

void Net::backward_layer(std::size_t i) {
  if (layers_[i]->is_loss()) layer_tops_[i][0]->diff()[0] = 1.0f;
  if (layers_[i]->spec().type == LayerType::Accuracy) return;
  layers_[i]->backward(layer_tops_[i], layer_bottoms_[i]);
}

namespace {

/// Iterates one layer's parameter blobs against a packed segment.
template <typename BlobSpanFn>
void walk_layer_segment(const std::vector<std::unique_ptr<Layer>>& layers, std::size_t i,
                        std::size_t segment_size, BlobSpanFn&& fn) {
  std::size_t offset = 0;
  for (Blob* param : layers[i]->params()) {
    fn(*param, offset);
    offset += param->count();
  }
  if (offset != segment_size) throw std::runtime_error("layer segment size mismatch");
}

}  // namespace

void Net::flatten_layer_params(std::size_t i, std::span<float> out) const {
  walk_layer_segment(layers_, i, out.size(), [&](Blob& param, std::size_t offset) {
    std::copy(param.data().begin(), param.data().end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
  });
}

void Net::unflatten_layer_params(std::size_t i, std::span<const float> in) {
  walk_layer_segment(layers_, i, in.size(), [&](Blob& param, std::size_t offset) {
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
              in.begin() + static_cast<std::ptrdiff_t>(offset + param.count()),
              param.data().begin());
  });
}

void Net::flatten_layer_diffs(std::size_t i, std::span<float> out) const {
  walk_layer_segment(layers_, i, out.size(), [&](Blob& param, std::size_t offset) {
    std::copy(param.diff().begin(), param.diff().end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
  });
}

void Net::unflatten_layer_diffs(std::size_t i, std::span<const float> in) {
  walk_layer_segment(layers_, i, in.size(), [&](Blob& param, std::size_t offset) {
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
              in.begin() + static_cast<std::ptrdiff_t>(offset + param.count()),
              param.diff().begin());
  });
}

void Net::flatten_params(std::span<float> out) const {
  if (out.size() != param_count_) throw std::runtime_error("flatten_params: size mismatch");
  std::size_t offset = 0;
  for (const Blob* param : params_) {
    std::copy(param->data().begin(), param->data().end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += param->count();
  }
}

void Net::unflatten_params(std::span<const float> in) {
  if (in.size() != param_count_) throw std::runtime_error("unflatten_params: size mismatch");
  std::size_t offset = 0;
  for (Blob* param : params_) {
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
              in.begin() + static_cast<std::ptrdiff_t>(offset + param->count()),
              param->data().begin());
    offset += param->count();
  }
}

void Net::flatten_diffs(std::span<float> out) const {
  if (out.size() != param_count_) throw std::runtime_error("flatten_diffs: size mismatch");
  std::size_t offset = 0;
  for (const Blob* param : params_) {
    std::copy(param->diff().begin(), param->diff().end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += param->count();
  }
}

void Net::unflatten_diffs(std::span<const float> in) {
  if (in.size() != param_count_) throw std::runtime_error("unflatten_diffs: size mismatch");
  std::size_t offset = 0;
  for (Blob* param : params_) {
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
              in.begin() + static_cast<std::ptrdiff_t>(offset + param->count()),
              param->diff().begin());
    offset += param->count();
  }
}

void Net::scale_diffs(float factor) {
  for (Blob* param : params_) {
    for (float& v : param->diff()) v *= factor;
  }
}

void Net::zero_param_diffs() {
  for (Blob* param : params_) param->zero_diff();
}

void Net::set_iteration(long iteration) {
  for (auto& layer : layers_) layer->set_iteration(iteration);
}

}  // namespace scaffe::dl
