#include "dl/layer.h"

#include <stdexcept>

namespace scaffe::dl {

const char* layer_type_name(LayerType type) noexcept {
  switch (type) {
    case LayerType::InnerProduct: return "InnerProduct";
    case LayerType::Convolution: return "Convolution";
    case LayerType::Pooling: return "Pooling";
    case LayerType::ReLU: return "ReLU";
    case LayerType::Dropout: return "Dropout";
    case LayerType::Softmax: return "Softmax";
    case LayerType::SoftmaxWithLoss: return "SoftmaxWithLoss";
    case LayerType::Accuracy: return "Accuracy";
    case LayerType::Concat: return "Concat";
    case LayerType::LRN: return "LRN";
    case LayerType::Split: return "Split";
    case LayerType::Sigmoid: return "Sigmoid";
    case LayerType::TanH: return "TanH";
    case LayerType::EltwiseSum: return "EltwiseSum";
  }
  return "?";
}

LayerSpec LayerSpec::inner_product(std::string name, std::string bottom, std::string top,
                                   int num_output) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::InnerProduct;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  spec.num_output = num_output;
  return spec;
}

LayerSpec LayerSpec::conv(std::string name, std::string bottom, std::string top, int num_output,
                          int kernel, int stride, int pad) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Convolution;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  spec.num_output = num_output;
  spec.kernel = kernel;
  spec.stride = stride;
  spec.pad = pad;
  return spec;
}

LayerSpec LayerSpec::pool(std::string name, std::string bottom, std::string top, int kernel,
                          int stride, PoolMethod method) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Pooling;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  spec.kernel = kernel;
  spec.stride = stride;
  spec.pool_method = method;
  return spec;
}

LayerSpec LayerSpec::relu(std::string name, std::string bottom, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::ReLU;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::dropout(std::string name, std::string bottom, std::string top, float ratio) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Dropout;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  spec.dropout_ratio = ratio;
  return spec;
}

LayerSpec LayerSpec::softmax(std::string name, std::string bottom, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Softmax;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::softmax_loss(std::string name, std::string bottom, std::string label,
                                  std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::SoftmaxWithLoss;
  spec.bottoms = {std::move(bottom), std::move(label)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::accuracy(std::string name, std::string bottom, std::string label,
                              std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Accuracy;
  spec.bottoms = {std::move(bottom), std::move(label)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::concat(std::string name, std::vector<std::string> bottoms, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Concat;
  spec.bottoms = std::move(bottoms);
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::lrn(std::string name, std::string bottom, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::LRN;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::split(std::string name, std::string bottom, std::vector<std::string> tops) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Split;
  spec.bottoms = {std::move(bottom)};
  spec.tops = std::move(tops);
  return spec;
}

LayerSpec LayerSpec::sigmoid(std::string name, std::string bottom, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::Sigmoid;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::tanh(std::string name, std::string bottom, std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::TanH;
  spec.bottoms = {std::move(bottom)};
  spec.tops = {std::move(top)};
  return spec;
}

LayerSpec LayerSpec::eltwise_sum(std::string name, std::vector<std::string> bottoms,
                                 std::string top) {
  LayerSpec spec;
  spec.name = std::move(name);
  spec.type = LayerType::EltwiseSum;
  spec.bottoms = std::move(bottoms);
  spec.tops = {std::move(top)};
  return spec;
}

namespace detail {
std::unique_ptr<Layer> make_simple_layer(const LayerSpec& spec);
std::unique_ptr<Layer> make_spatial_layer(const LayerSpec& spec);
}  // namespace detail

std::unique_ptr<Layer> make_layer(const LayerSpec& spec) {
  switch (spec.type) {
    case LayerType::InnerProduct:
    case LayerType::ReLU:
    case LayerType::Dropout:
    case LayerType::Softmax:
    case LayerType::SoftmaxWithLoss:
    case LayerType::Accuracy:
    case LayerType::Concat:
    case LayerType::Split:
    case LayerType::Sigmoid:
    case LayerType::TanH:
    case LayerType::EltwiseSum:
      return detail::make_simple_layer(spec);
    case LayerType::Convolution:
    case LayerType::Pooling:
    case LayerType::LRN:
      return detail::make_spatial_layer(spec);
  }
  throw std::runtime_error("make_layer: unknown type");
}

}  // namespace scaffe::dl
