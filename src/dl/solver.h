// SGD solver (Section 2.2's Solver abstraction).
//
// One solver per GPU; each owns its Net replica. A training iteration is
// step() (load inputs, forward, backward) followed by apply_update().
// Distributed trainers hook between the two: they aggregate parameter diffs
// across solvers (the gradient aggregation phase) before the root applies
// the update — precisely the S-Caffe workflow of Figure 1.
#pragma once

#include <cstdint>
#include <span>

#include "dl/net.h"

namespace scaffe::dl {

struct SolverConfig {
  float base_lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;

  /// L2 gradient clipping threshold (Caffe's clip_gradients); 0 disables.
  /// When the global diff norm exceeds it, diffs are rescaled to the
  /// threshold before the update.
  float clip_gradients = 0.0f;

  enum class LrPolicy { Fixed, Step };
  LrPolicy lr_policy = LrPolicy::Fixed;
  float gamma = 0.1f;   // Step: lr *= gamma every step_size iterations
  long step_size = 100000;

  std::uint64_t seed = 1;  // net parameter initialization seed
};

class SgdSolver {
 public:
  SgdSolver(NetSpec net_spec, SolverConfig config, gpu::Device* device = nullptr);

  Net& net() noexcept { return net_; }
  const Net& net() const noexcept { return net_; }
  const SolverConfig& config() const noexcept { return config_; }
  long iteration() const noexcept { return iteration_; }

  /// Effective learning rate at the current iteration.
  float learning_rate() const noexcept;

  /// Loads one mini-batch into the `data`/`label` input blobs, zeroes
  /// parameter diffs, and runs forward + backward. Returns the loss.
  float step(std::span<const float> data, std::span<const float> labels);

  /// Forward + backward on whatever is already in the input blobs.
  float step_preloaded();

  /// Momentum-SGD parameter update from current diffs (after optional
  /// gradient clipping); advances iteration.
  void apply_update();

  /// Global L2 norm of the current parameter diffs.
  double diff_l2_norm() const;

  /// Advances the iteration counter without updating parameters — what
  /// non-root solvers do in S-Caffe's root-update scheme (the root's update
  /// reaches them through the next data-propagation broadcast).
  void advance_iteration() noexcept { ++iteration_; }

  // --- checkpoint state (snapshot v2 / fault recovery) ----------------------
  // Momentum buffers and the iteration counter are the solver state beyond
  // the net's parameters; restoring all three makes a resumed run bitwise
  // identical to an uninterrupted one.

  /// Total momentum floats (equals the net's param_count).
  std::size_t state_count() const noexcept;

  /// Concatenates the per-blob momentum buffers into `out` (param order).
  void flatten_state(std::span<float> out) const;

  /// Inverse of flatten_state.
  void unflatten_state(std::span<const float> in);

  /// Restores the iteration counter from a checkpoint.
  void set_iteration(long iteration) noexcept { iteration_ = iteration; }

 private:
  SolverConfig config_;
  Net net_;
  std::vector<std::vector<float>> momentum_;  // one buffer per param blob
  long iteration_ = 0;
};

}  // namespace scaffe::dl
