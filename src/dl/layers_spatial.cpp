// Spatial layers: Convolution, Pooling, LRN (NCHW direct implementations).
#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dl/layer.h"

namespace scaffe::dl {
namespace {

struct Nchw {
  int n, c, h, w;
  explicit Nchw(const Blob& blob) {
    if (blob.shape().size() != 4) throw std::runtime_error("expected 4-d NCHW blob");
    n = blob.shape(0);
    c = blob.shape(1);
    h = blob.shape(2);
    w = blob.shape(3);
  }
  std::size_t index(int in, int ic, int ih, int iw) const noexcept {
    return ((static_cast<std::size_t>(in) * static_cast<std::size_t>(c) +
             static_cast<std::size_t>(ic)) *
                static_cast<std::size_t>(h) +
            static_cast<std::size_t>(ih)) *
               static_cast<std::size_t>(w) +
           static_cast<std::size_t>(iw);
  }
};

class ConvolutionLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng& rng) override {
    const Nchw in(*bottoms[0]);
    const int k = spec_.kernel;
    out_h_ = (in.h + 2 * spec_.pad - k) / spec_.stride + 1;
    out_w_ = (in.w + 2 * spec_.pad - k) / spec_.stride + 1;
    if (out_h_ <= 0 || out_w_ <= 0) throw std::runtime_error("conv output collapsed");
    weight_ = add_param({spec_.num_output, in.c, k, k});
    bias_ = add_param({spec_.num_output});
    const float fan_in = static_cast<float>(in.c * k * k);
    const float stddev = std::sqrt(2.0f / fan_in);
    for (float& w : weight_->data()) w = static_cast<float>(rng.normal(0.0, stddev));
    tops[0]->reshape({in.n, spec_.num_output, out_h_, out_w_});
    if (spec_.conv_impl == ConvImpl::Im2colGemm) {
      col_.assign(static_cast<std::size_t>(in.c) * static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(k) * static_cast<std::size_t>(out_h_) *
                      static_cast<std::size_t>(out_w_),
                  0.0f);
    }
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    if (spec_.conv_impl == ConvImpl::Im2colGemm) {
      forward_gemm(bottoms, tops);
      return;
    }
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    const int k = spec_.kernel;
    auto x = bottoms[0]->data();
    auto w = weight_->data();
    auto b = bias_->data();
    auto y = tops[0]->data();
    const Nchw wv{*weight_};
    for (int n = 0; n < in.n; ++n) {
      for (int co = 0; co < out.c; ++co) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            float acc = b[static_cast<std::size_t>(co)];
            for (int ci = 0; ci < in.c; ++ci) {
              for (int kh = 0; kh < k; ++kh) {
                const int hi = ho * spec_.stride - spec_.pad + kh;
                if (hi < 0 || hi >= in.h) continue;
                for (int kw = 0; kw < k; ++kw) {
                  const int wi = wo * spec_.stride - spec_.pad + kw;
                  if (wi < 0 || wi >= in.w) continue;
                  acc += x[in.index(n, ci, hi, wi)] * w[wv.index(co, ci, kh, kw)];
                }
              }
            }
            y[out.index(n, co, ho, wo)] = acc;
          }
        }
      }
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    if (spec_.conv_impl == ConvImpl::Im2colGemm) {
      backward_gemm(tops, bottoms);
      return;
    }
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    const int k = spec_.kernel;
    auto x = bottoms[0]->data();
    auto dx = bottoms[0]->diff();
    auto w = weight_->data();
    auto dw = weight_->diff();
    auto db = bias_->diff();
    auto dy = tops[0]->diff();
    const Nchw wv{*weight_};
    std::fill(dx.begin(), dx.end(), 0.0f);
    for (int n = 0; n < in.n; ++n) {
      for (int co = 0; co < out.c; ++co) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const float g = dy[out.index(n, co, ho, wo)];
            if (g == 0.0f) continue;
            db[static_cast<std::size_t>(co)] += g;
            for (int ci = 0; ci < in.c; ++ci) {
              for (int kh = 0; kh < k; ++kh) {
                const int hi = ho * spec_.stride - spec_.pad + kh;
                if (hi < 0 || hi >= in.h) continue;
                for (int kw = 0; kw < k; ++kw) {
                  const int wi = wo * spec_.stride - spec_.pad + kw;
                  if (wi < 0 || wi >= in.w) continue;
                  dw[wv.index(co, ci, kh, kw)] += g * x[in.index(n, ci, hi, wi)];
                  dx[in.index(n, ci, hi, wi)] += g * w[wv.index(co, ci, kh, kw)];
                }
              }
            }
          }
        }
      }
    }
  }

 private:
  // --- im2col + GEMM path (Caffe's actual lowering) ------------------------

  /// Unpacks one image into the column matrix: row (ci,kh,kw), col (ho,wo).
  void im2col(std::span<const float> image, const Nchw& in) {
    const int k = spec_.kernel;
    const std::size_t cols =
        static_cast<std::size_t>(out_h_) * static_cast<std::size_t>(out_w_);
    std::size_t row = 0;
    for (int ci = 0; ci < in.c; ++ci) {
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw, ++row) {
          std::size_t col = 0;
          for (int ho = 0; ho < out_h_; ++ho) {
            const int hi = ho * spec_.stride - spec_.pad + kh;
            for (int wo = 0; wo < out_w_; ++wo, ++col) {
              const int wi = wo * spec_.stride - spec_.pad + kw;
              const bool inside = hi >= 0 && hi < in.h && wi >= 0 && wi < in.w;
              col_[row * cols + col] =
                  inside ? image[(static_cast<std::size_t>(ci) * in.h +
                                  static_cast<std::size_t>(hi)) *
                                     static_cast<std::size_t>(in.w) +
                                 static_cast<std::size_t>(wi)]
                         : 0.0f;
            }
          }
        }
      }
    }
  }

  /// Scatter-adds the column-matrix gradient back into the image gradient.
  void col2im_accumulate(std::span<float> dimage, const Nchw& in) {
    const int k = spec_.kernel;
    const std::size_t cols =
        static_cast<std::size_t>(out_h_) * static_cast<std::size_t>(out_w_);
    std::size_t row = 0;
    for (int ci = 0; ci < in.c; ++ci) {
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw, ++row) {
          std::size_t col = 0;
          for (int ho = 0; ho < out_h_; ++ho) {
            const int hi = ho * spec_.stride - spec_.pad + kh;
            for (int wo = 0; wo < out_w_; ++wo, ++col) {
              const int wi = wo * spec_.stride - spec_.pad + kw;
              if (hi >= 0 && hi < in.h && wi >= 0 && wi < in.w) {
                dimage[(static_cast<std::size_t>(ci) * in.h + static_cast<std::size_t>(hi)) *
                           static_cast<std::size_t>(in.w) +
                       static_cast<std::size_t>(wi)] += col_[row * cols + col];
              }
            }
          }
        }
      }
    }
  }

  void forward_gemm(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) {
    const Nchw in(*bottoms[0]);
    const std::size_t rows = static_cast<std::size_t>(in.c) *
                             static_cast<std::size_t>(spec_.kernel) *
                             static_cast<std::size_t>(spec_.kernel);
    const std::size_t cols =
        static_cast<std::size_t>(out_h_) * static_cast<std::size_t>(out_w_);
    auto w = weight_->data();
    auto b = bias_->data();
    const std::size_t image_floats = static_cast<std::size_t>(in.c) *
                                     static_cast<std::size_t>(in.h) *
                                     static_cast<std::size_t>(in.w);
    const std::size_t out_floats = static_cast<std::size_t>(spec_.num_output) * cols;

    for (int n = 0; n < in.n; ++n) {
      im2col(bottoms[0]->data().subspan(static_cast<std::size_t>(n) * image_floats,
                                        image_floats),
             in);
      std::span<float> y =
          tops[0]->data().subspan(static_cast<std::size_t>(n) * out_floats, out_floats);
      // y[o, col] = sum_r W[o, r] * col[r, col] + b[o]  (GEMM)
      for (int o = 0; o < spec_.num_output; ++o) {
        std::span<float> yo = y.subspan(static_cast<std::size_t>(o) * cols, cols);
        std::fill(yo.begin(), yo.end(), b[static_cast<std::size_t>(o)]);
        for (std::size_t r = 0; r < rows; ++r) {
          const float wv = w[static_cast<std::size_t>(o) * rows + r];
          if (wv == 0.0f) continue;
          const float* col_row = col_.data() + r * cols;
          for (std::size_t c = 0; c < cols; ++c) yo[c] += wv * col_row[c];
        }
      }
    }
  }

  void backward_gemm(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) {
    const Nchw in(*bottoms[0]);
    const std::size_t rows = static_cast<std::size_t>(in.c) *
                             static_cast<std::size_t>(spec_.kernel) *
                             static_cast<std::size_t>(spec_.kernel);
    const std::size_t cols =
        static_cast<std::size_t>(out_h_) * static_cast<std::size_t>(out_w_);
    auto w = weight_->data();
    auto dw = weight_->diff();
    auto db = bias_->diff();
    const std::size_t image_floats = static_cast<std::size_t>(in.c) *
                                     static_cast<std::size_t>(in.h) *
                                     static_cast<std::size_t>(in.w);
    const std::size_t out_floats = static_cast<std::size_t>(spec_.num_output) * cols;

    auto dx = bottoms[0]->diff();
    std::fill(dx.begin(), dx.end(), 0.0f);
    std::vector<float> dcol(rows * cols);

    for (int n = 0; n < in.n; ++n) {
      im2col(bottoms[0]->data().subspan(static_cast<std::size_t>(n) * image_floats,
                                        image_floats),
             in);
      std::span<const float> dy =
          tops[0]->diff().subspan(static_cast<std::size_t>(n) * out_floats, out_floats);

      // dW[o, r] += dy[o, :] . col[r, :]^T ; db[o] += sum dy[o, :]
      for (int o = 0; o < spec_.num_output; ++o) {
        std::span<const float> dyo = dy.subspan(static_cast<std::size_t>(o) * cols, cols);
        double bias_acc = 0.0;
        for (float v : dyo) bias_acc += v;
        db[static_cast<std::size_t>(o)] += static_cast<float>(bias_acc);
        for (std::size_t r = 0; r < rows; ++r) {
          const float* col_row = col_.data() + r * cols;
          double acc = 0.0;
          for (std::size_t c = 0; c < cols; ++c) acc += static_cast<double>(dyo[c]) * col_row[c];
          dw[static_cast<std::size_t>(o) * rows + r] += static_cast<float>(acc);
        }
      }

      // dcol = W^T dy, then scatter back (col2im).
      std::fill(dcol.begin(), dcol.end(), 0.0f);
      for (int o = 0; o < spec_.num_output; ++o) {
        std::span<const float> dyo = dy.subspan(static_cast<std::size_t>(o) * cols, cols);
        for (std::size_t r = 0; r < rows; ++r) {
          const float wv = w[static_cast<std::size_t>(o) * rows + r];
          if (wv == 0.0f) continue;
          float* dcol_row = dcol.data() + r * cols;
          for (std::size_t c = 0; c < cols; ++c) dcol_row[c] += wv * dyo[c];
        }
      }
      col_.swap(dcol);  // col2im reads col_
      col2im_accumulate(dx.subspan(static_cast<std::size_t>(n) * image_floats, image_floats),
                        in);
      col_.swap(dcol);
    }
  }

  int out_h_ = 0;
  int out_w_ = 0;
  Blob* weight_ = nullptr;
  Blob* bias_ = nullptr;
  std::vector<float> col_;  // im2col staging, one image at a time
};

class PoolingLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    const Nchw in(*bottoms[0]);
    // Caffe uses ceil mode for pooling output sizes.
    out_h_ = (in.h + 2 * spec_.pad - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    out_w_ = (in.w + 2 * spec_.pad - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    tops[0]->reshape({in.n, in.c, out_h_, out_w_});
    argmax_.assign(tops[0]->count(), 0);
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const int h0 = std::max(ho * spec_.stride - spec_.pad, 0);
            const int w0 = std::max(wo * spec_.stride - spec_.pad, 0);
            const int h1 = std::min(ho * spec_.stride - spec_.pad + spec_.kernel, in.h);
            const int w1 = std::min(wo * spec_.stride - spec_.pad + spec_.kernel, in.w);
            const std::size_t out_idx = out.index(n, c, ho, wo);
            if (spec_.pool_method == PoolMethod::Max) {
              float best = -std::numeric_limits<float>::infinity();
              std::size_t best_idx = in.index(n, c, h0, w0);
              for (int hi = h0; hi < h1; ++hi) {
                for (int wi = w0; wi < w1; ++wi) {
                  const std::size_t idx = in.index(n, c, hi, wi);
                  if (x[idx] > best) {
                    best = x[idx];
                    best_idx = idx;
                  }
                }
              }
              y[out_idx] = best;
              argmax_[out_idx] = best_idx;
            } else {
              float acc = 0.0f;
              for (int hi = h0; hi < h1; ++hi)
                for (int wi = w0; wi < w1; ++wi) acc += x[in.index(n, c, hi, wi)];
              const int window = std::max((h1 - h0) * (w1 - w0), 1);
              y[out_idx] = acc / static_cast<float>(window);
            }
          }
        }
      }
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto dx = bottoms[0]->diff();
    auto dy = tops[0]->diff();
    std::fill(dx.begin(), dx.end(), 0.0f);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const std::size_t out_idx = out.index(n, c, ho, wo);
            if (spec_.pool_method == PoolMethod::Max) {
              dx[argmax_[out_idx]] += dy[out_idx];
            } else {
              const int h0 = std::max(ho * spec_.stride - spec_.pad, 0);
              const int w0 = std::max(wo * spec_.stride - spec_.pad, 0);
              const int h1 = std::min(ho * spec_.stride - spec_.pad + spec_.kernel, in.h);
              const int w1 = std::min(wo * spec_.stride - spec_.pad + spec_.kernel, in.w);
              const int window = std::max((h1 - h0) * (w1 - w0), 1);
              const float g = dy[out_idx] / static_cast<float>(window);
              for (int hi = h0; hi < h1; ++hi)
                for (int wi = w0; wi < w1; ++wi) dx[in.index(n, c, hi, wi)] += g;
            }
          }
        }
      }
    }
  }

 private:
  int out_h_ = 0;
  int out_w_ = 0;
  std::vector<std::size_t> argmax_;
};

/// Across-channel local response normalization (AlexNet-era):
///   scale_i = 1 + alpha/n * sum_{j in window(i)} x_j^2
///   y_i     = x_i * scale_i^{-beta}
class LrnLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
    scale_.reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const Nchw in(*bottoms[0]);
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    auto s = scale_.data();
    const int half = spec_.lrn_size / 2;
    const float alpha_over_n = spec_.lrn_alpha / static_cast<float>(spec_.lrn_size);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int h = 0; h < in.h; ++h) {
          for (int w = 0; w < in.w; ++w) {
            float acc = 0.0f;
            for (int j = std::max(c - half, 0); j <= std::min(c + half, in.c - 1); ++j) {
              const float v = x[in.index(n, j, h, w)];
              acc += v * v;
            }
            const std::size_t idx = in.index(n, c, h, w);
            s[idx] = 1.0f + alpha_over_n * acc;
            y[idx] = x[idx] * std::pow(s[idx], -spec_.lrn_beta);
          }
        }
      }
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const Nchw in(*bottoms[0]);
    auto x = bottoms[0]->data();
    auto dx = bottoms[0]->diff();
    auto y = tops[0]->data();
    auto dy = tops[0]->diff();
    auto s = scale_.data();
    const int half = spec_.lrn_size / 2;
    const float alpha_over_n = spec_.lrn_alpha / static_cast<float>(spec_.lrn_size);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int h = 0; h < in.h; ++h) {
          for (int w = 0; w < in.w; ++w) {
            const std::size_t idx = in.index(n, c, h, w);
            // dx_i = dy_i * s_i^{-beta}
            //      - 2*alpha*beta/n * x_i * sum_{j: i in window(j)} dy_j y_j / s_j
            float cross = 0.0f;
            for (int j = std::max(c - half, 0); j <= std::min(c + half, in.c - 1); ++j) {
              const std::size_t jdx = in.index(n, j, h, w);
              cross += dy[jdx] * y[jdx] / s[jdx];
            }
            dx[idx] = dy[idx] * std::pow(s[idx], -spec_.lrn_beta) -
                      2.0f * alpha_over_n * spec_.lrn_beta * x[idx] * cross;
          }
        }
      }
    }
  }

 private:
  Blob scale_;
};

}  // namespace

namespace detail {

std::unique_ptr<Layer> make_spatial_layer(const LayerSpec& spec) {
  switch (spec.type) {
    case LayerType::Convolution: return std::make_unique<ConvolutionLayer>(spec);
    case LayerType::Pooling: return std::make_unique<PoolingLayer>(spec);
    case LayerType::LRN: return std::make_unique<LrnLayer>(spec);
    default: throw std::runtime_error("make_spatial_layer: unsupported type");
  }
}

}  // namespace detail

}  // namespace scaffe::dl
