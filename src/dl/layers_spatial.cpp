// Spatial layers: Convolution, Pooling, LRN (NCHW implementations).
//
// Convolution defaults to Caffe's im2col + GEMM lowering, batch-parallelized
// over the shared thread pool with per-chunk column buffers; the direct
// triple-loop form is kept as a reference implementation.
#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dl/layer.h"
#include "dl/math.h"
#include "util/thread_pool.h"

namespace scaffe::dl {
namespace {

struct Nchw {
  int n, c, h, w;
  explicit Nchw(const Blob& blob) {
    if (blob.shape().size() != 4) throw std::runtime_error("expected 4-d NCHW blob");
    n = blob.shape(0);
    c = blob.shape(1);
    h = blob.shape(2);
    w = blob.shape(3);
  }
  std::size_t index(int in, int ic, int ih, int iw) const noexcept {
    return ((static_cast<std::size_t>(in) * static_cast<std::size_t>(c) +
             static_cast<std::size_t>(ic)) *
                static_cast<std::size_t>(h) +
            static_cast<std::size_t>(ih)) *
               static_cast<std::size_t>(w) +
           static_cast<std::size_t>(iw);
  }
};

/// Visits every in-bounds tap of one output element's receptive field as
/// (input index, weight index) via the shared Nchw::index helper — the single
/// source of the direct path's forward/backward index arithmetic.
template <typename Fn>
void for_each_conv_tap(const Nchw& in, const Nchw& wv, int kernel, int stride, int pad, int n,
                       int co, int ho, int wo, Fn&& fn) {
  for (int ci = 0; ci < in.c; ++ci) {
    for (int kh = 0; kh < kernel; ++kh) {
      const int hi = ho * stride - pad + kh;
      if (hi < 0 || hi >= in.h) continue;
      for (int kw = 0; kw < kernel; ++kw) {
        const int wi = wo * stride - pad + kw;
        if (wi < 0 || wi >= in.w) continue;
        fn(in.index(n, ci, hi, wi), wv.index(co, ci, kh, kw));
      }
    }
  }
}

class ConvolutionLayer final : public Layer {
 public:
  using Layer::Layer;

  // Batch chunking for the GEMM path. The chunk count is a fixed constant —
  // NOT the pool's thread count — so chunk boundaries, per-chunk buffers, and
  // the chunk-ordered dW/db reduction are identical at any SCAFFE_THREADS.
  static constexpr int kMaxBatchChunks = 8;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng& rng) override {
    const Nchw in(*bottoms[0]);
    const int k = spec_.kernel;
    out_h_ = (in.h + 2 * spec_.pad - k) / spec_.stride + 1;
    out_w_ = (in.w + 2 * spec_.pad - k) / spec_.stride + 1;
    if (out_h_ <= 0 || out_w_ <= 0) throw std::runtime_error("conv output collapsed");
    weight_ = add_param({spec_.num_output, in.c, k, k});
    bias_ = add_param({spec_.num_output});
    const float fan_in = static_cast<float>(in.c * k * k);
    const float stddev = std::sqrt(2.0f / fan_in);
    for (float& w : weight_->data()) w = static_cast<float>(rng.normal(0.0, stddev));
    tops[0]->reshape({in.n, spec_.num_output, out_h_, out_w_});
    col_bufs_.clear();
    dcol_bufs_.clear();
    dw_parts_.clear();
    db_parts_.clear();
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    if (spec_.conv_impl == ConvImpl::Im2colGemm) {
      forward_gemm(bottoms, tops);
    } else {
      forward_direct(bottoms, tops);
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    if (spec_.conv_impl == ConvImpl::Im2colGemm) {
      backward_gemm(tops, bottoms);
    } else {
      backward_direct(tops, bottoms);
    }
  }

 private:
  // --- direct path (reference implementation) -------------------------------

  void forward_direct(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto x = bottoms[0]->data();
    auto w = weight_->data();
    auto b = bias_->data();
    auto y = tops[0]->data();
    const Nchw wv{*weight_};
    for (int n = 0; n < in.n; ++n) {
      for (int co = 0; co < out.c; ++co) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            float acc = b[static_cast<std::size_t>(co)];
            for_each_conv_tap(in, wv, spec_.kernel, spec_.stride, spec_.pad, n, co, ho, wo,
                              [&](std::size_t xi, std::size_t wi) { acc += x[xi] * w[wi]; });
            y[out.index(n, co, ho, wo)] = acc;
          }
        }
      }
    }
  }

  void backward_direct(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto x = bottoms[0]->data();
    auto dx = bottoms[0]->diff();
    auto w = weight_->data();
    auto dw = weight_->diff();
    auto db = bias_->diff();
    auto dy = tops[0]->diff();
    const Nchw wv{*weight_};
    std::fill(dx.begin(), dx.end(), 0.0f);
    for (int n = 0; n < in.n; ++n) {
      for (int co = 0; co < out.c; ++co) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const float g = dy[out.index(n, co, ho, wo)];
            if (g == 0.0f) continue;
            db[static_cast<std::size_t>(co)] += g;
            for_each_conv_tap(in, wv, spec_.kernel, spec_.stride, spec_.pad, n, co, ho, wo,
                              [&](std::size_t xi, std::size_t wi) {
                                dw[wi] += g * x[xi];
                                dx[xi] += g * w[wi];
                              });
          }
        }
      }
    }
  }

  // --- im2col + GEMM path (Caffe's actual lowering, the default) ------------

  std::size_t col_rows(const Nchw& in) const noexcept {
    return static_cast<std::size_t>(in.c) * static_cast<std::size_t>(spec_.kernel) *
           static_cast<std::size_t>(spec_.kernel);
  }
  std::size_t col_cols() const noexcept {
    return static_cast<std::size_t>(out_h_) * static_cast<std::size_t>(out_w_);
  }

  /// Unpacks one image into a column matrix: row (ci,kh,kw), col (ho,wo).
  void im2col(const float* image, const Nchw& in, float* col) const {
    const int k = spec_.kernel;
    const std::size_t cols = col_cols();
    std::size_t row = 0;
    for (int ci = 0; ci < in.c; ++ci) {
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw, ++row) {
          std::size_t col_idx = 0;
          for (int ho = 0; ho < out_h_; ++ho) {
            const int hi = ho * spec_.stride - spec_.pad + kh;
            for (int wo = 0; wo < out_w_; ++wo, ++col_idx) {
              const int wi = wo * spec_.stride - spec_.pad + kw;
              const bool inside = hi >= 0 && hi < in.h && wi >= 0 && wi < in.w;
              col[row * cols + col_idx] =
                  inside ? image[(static_cast<std::size_t>(ci) * in.h +
                                  static_cast<std::size_t>(hi)) *
                                     static_cast<std::size_t>(in.w) +
                                 static_cast<std::size_t>(wi)]
                         : 0.0f;
            }
          }
        }
      }
    }
  }

  /// Scatter-adds a column-matrix gradient back into one image gradient.
  void col2im_accumulate(const float* col, const Nchw& in, float* dimage) const {
    const int k = spec_.kernel;
    const std::size_t cols = col_cols();
    std::size_t row = 0;
    for (int ci = 0; ci < in.c; ++ci) {
      for (int kh = 0; kh < k; ++kh) {
        for (int kw = 0; kw < k; ++kw, ++row) {
          std::size_t col_idx = 0;
          for (int ho = 0; ho < out_h_; ++ho) {
            const int hi = ho * spec_.stride - spec_.pad + kh;
            for (int wo = 0; wo < out_w_; ++wo, ++col_idx) {
              const int wi = wo * spec_.stride - spec_.pad + kw;
              if (hi >= 0 && hi < in.h && wi >= 0 && wi < in.w) {
                dimage[(static_cast<std::size_t>(ci) * in.h + static_cast<std::size_t>(hi)) *
                           static_cast<std::size_t>(in.w) +
                       static_cast<std::size_t>(wi)] += col[row * cols + col_idx];
              }
            }
          }
        }
      }
    }
  }

  static std::size_t batch_grain(int n) noexcept {
    return static_cast<std::size_t>(std::max((n + kMaxBatchChunks - 1) / kMaxBatchChunks, 1));
  }

  static void ensure_buffers(std::vector<std::vector<float>>& bufs, std::size_t count,
                             std::size_t size) {
    if (bufs.size() < count) bufs.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (bufs[i].size() < size) bufs[i].resize(size);
    }
  }

  void forward_gemm(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) {
    const Nchw in(*bottoms[0]);
    const std::size_t rows = col_rows(in);
    const std::size_t cols = col_cols();
    const float* w = weight_->data().data();
    auto b = bias_->data();
    const float* x = bottoms[0]->data().data();
    float* y = tops[0]->data().data();
    const std::size_t image_floats = static_cast<std::size_t>(in.c) *
                                     static_cast<std::size_t>(in.h) *
                                     static_cast<std::size_t>(in.w);
    const std::size_t out_floats = static_cast<std::size_t>(spec_.num_output) * cols;

    const std::size_t grain = batch_grain(in.n);
    const std::size_t chunks = (static_cast<std::size_t>(in.n) + grain - 1) / grain;
    ensure_buffers(col_bufs_, chunks, rows * cols);

    util::parallel_for(0, static_cast<std::size_t>(in.n), grain,
                       [&](std::size_t begin, std::size_t end) {
                         float* col = col_bufs_[begin / grain].data();
                         for (std::size_t img = begin; img < end; ++img) {
                           im2col(x + img * image_floats, in, col);
                           float* yi = y + img * out_floats;
                           // y[o, col] = b[o] + sum_r W[o, r] * col[r, col]
                           for (int o = 0; o < spec_.num_output; ++o) {
                             std::fill(yi + static_cast<std::size_t>(o) * cols,
                                       yi + static_cast<std::size_t>(o + 1) * cols,
                                       b[static_cast<std::size_t>(o)]);
                           }
                           math::sgemm(false, false, spec_.num_output, static_cast<int>(cols),
                                       static_cast<int>(rows), 1.0f, w, col, 1.0f, yi);
                         }
                       });
  }

  void backward_gemm(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) {
    const Nchw in(*bottoms[0]);
    const std::size_t rows = col_rows(in);
    const std::size_t cols = col_cols();
    const float* w = weight_->data().data();
    auto dw = weight_->diff();
    auto db = bias_->diff();
    const float* x = bottoms[0]->data().data();
    auto dx = bottoms[0]->diff();
    const float* dy = tops[0]->diff().data();
    const std::size_t image_floats = static_cast<std::size_t>(in.c) *
                                     static_cast<std::size_t>(in.h) *
                                     static_cast<std::size_t>(in.w);
    const std::size_t out_floats = static_cast<std::size_t>(spec_.num_output) * cols;

    const std::size_t grain = batch_grain(in.n);
    const std::size_t chunks = (static_cast<std::size_t>(in.n) + grain - 1) / grain;
    ensure_buffers(col_bufs_, chunks, rows * cols);
    ensure_buffers(dcol_bufs_, chunks, rows * cols);
    ensure_buffers(dw_parts_, chunks, static_cast<std::size_t>(spec_.num_output) * rows);
    ensure_buffers(db_parts_, chunks, static_cast<std::size_t>(spec_.num_output));

    std::fill(dx.begin(), dx.end(), 0.0f);

    // Phase 1 — per-image work, parallel over batch chunks. dx slices are
    // disjoint; dW/db accumulate into per-chunk partial buffers.
    util::parallel_for(
        0, static_cast<std::size_t>(in.n), grain, [&](std::size_t begin, std::size_t end) {
          const std::size_t chunk = begin / grain;
          float* col = col_bufs_[chunk].data();
          float* dcol = dcol_bufs_[chunk].data();
          auto& dw_part = dw_parts_[chunk];
          auto& db_part = db_parts_[chunk];
          std::fill(dw_part.begin(), dw_part.end(), 0.0f);
          std::fill(db_part.begin(), db_part.end(), 0.0f);
          for (std::size_t img = begin; img < end; ++img) {
            im2col(x + img * image_floats, in, col);
            const float* dyi = dy + img * out_floats;
            // db[o] += sum dy[o, :]
            for (int o = 0; o < spec_.num_output; ++o) {
              const float* dyo = dyi + static_cast<std::size_t>(o) * cols;
              double bias_acc = 0.0;
              for (std::size_t c = 0; c < cols; ++c) bias_acc += dyo[c];
              db_part[static_cast<std::size_t>(o)] += static_cast<float>(bias_acc);
            }
            // dW[o, r] += dy[o, :] . col[r, :]  (A * B^T)
            math::sgemm(false, true, spec_.num_output, static_cast<int>(rows),
                        static_cast<int>(cols), 1.0f, dyi, col, 1.0f, dw_part.data());
            // dcol = W^T dy, then scatter back (col2im).
            math::sgemm(true, false, static_cast<int>(rows), static_cast<int>(cols),
                        spec_.num_output, 1.0f, w, dyi, 0.0f, dcol);
            col2im_accumulate(dcol, in, dx.data() + img * image_floats);
          }
        });

    // Phase 2 — fold partials in chunk order: deterministic at any thread
    // count because the chunking above never depends on the pool size.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      const auto& dw_part = dw_parts_[chunk];
      for (std::size_t i = 0; i < dw.size(); ++i) dw[i] += dw_part[i];
      const auto& db_part = db_parts_[chunk];
      for (std::size_t i = 0; i < db.size(); ++i) db[i] += db_part[i];
    }
  }

  int out_h_ = 0;
  int out_w_ = 0;
  Blob* weight_ = nullptr;
  Blob* bias_ = nullptr;
  // Per-chunk staging for the batch-parallel GEMM path (chunk-indexed, so a
  // fixed image->buffer mapping regardless of which worker runs the chunk).
  std::vector<std::vector<float>> col_bufs_;
  std::vector<std::vector<float>> dcol_bufs_;
  std::vector<std::vector<float>> dw_parts_;
  std::vector<std::vector<float>> db_parts_;
};

class PoolingLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    const Nchw in(*bottoms[0]);
    // Caffe uses ceil mode for pooling output sizes.
    out_h_ = (in.h + 2 * spec_.pad - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    out_w_ = (in.w + 2 * spec_.pad - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    tops[0]->reshape({in.n, in.c, out_h_, out_w_});
    argmax_.assign(tops[0]->count(), 0);
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const int h0 = std::max(ho * spec_.stride - spec_.pad, 0);
            const int w0 = std::max(wo * spec_.stride - spec_.pad, 0);
            const int h1 = std::min(ho * spec_.stride - spec_.pad + spec_.kernel, in.h);
            const int w1 = std::min(wo * spec_.stride - spec_.pad + spec_.kernel, in.w);
            const std::size_t out_idx = out.index(n, c, ho, wo);
            if (spec_.pool_method == PoolMethod::Max) {
              float best = -std::numeric_limits<float>::infinity();
              std::size_t best_idx = in.index(n, c, h0, w0);
              for (int hi = h0; hi < h1; ++hi) {
                for (int wi = w0; wi < w1; ++wi) {
                  const std::size_t idx = in.index(n, c, hi, wi);
                  if (x[idx] > best) {
                    best = x[idx];
                    best_idx = idx;
                  }
                }
              }
              y[out_idx] = best;
              argmax_[out_idx] = best_idx;
            } else {
              float acc = 0.0f;
              for (int hi = h0; hi < h1; ++hi)
                for (int wi = w0; wi < w1; ++wi) acc += x[in.index(n, c, hi, wi)];
              const int window = std::max((h1 - h0) * (w1 - w0), 1);
              y[out_idx] = acc / static_cast<float>(window);
            }
          }
        }
      }
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const Nchw in(*bottoms[0]);
    const Nchw out(*tops[0]);
    auto dx = bottoms[0]->diff();
    auto dy = tops[0]->diff();
    std::fill(dx.begin(), dx.end(), 0.0f);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int ho = 0; ho < out.h; ++ho) {
          for (int wo = 0; wo < out.w; ++wo) {
            const std::size_t out_idx = out.index(n, c, ho, wo);
            if (spec_.pool_method == PoolMethod::Max) {
              dx[argmax_[out_idx]] += dy[out_idx];
            } else {
              const int h0 = std::max(ho * spec_.stride - spec_.pad, 0);
              const int w0 = std::max(wo * spec_.stride - spec_.pad, 0);
              const int h1 = std::min(ho * spec_.stride - spec_.pad + spec_.kernel, in.h);
              const int w1 = std::min(wo * spec_.stride - spec_.pad + spec_.kernel, in.w);
              const int window = std::max((h1 - h0) * (w1 - w0), 1);
              const float g = dy[out_idx] / static_cast<float>(window);
              for (int hi = h0; hi < h1; ++hi)
                for (int wi = w0; wi < w1; ++wi) dx[in.index(n, c, hi, wi)] += g;
            }
          }
        }
      }
    }
  }

 private:
  int out_h_ = 0;
  int out_w_ = 0;
  std::vector<std::size_t> argmax_;
};

/// Across-channel local response normalization (AlexNet-era):
///   scale_i = 1 + alpha/n * sum_{j in window(i)} x_j^2
///   y_i     = x_i * scale_i^{-beta}
class LrnLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
    scale_.reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const Nchw in(*bottoms[0]);
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    auto s = scale_.data();
    const int half = spec_.lrn_size / 2;
    const float alpha_over_n = spec_.lrn_alpha / static_cast<float>(spec_.lrn_size);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int h = 0; h < in.h; ++h) {
          for (int w = 0; w < in.w; ++w) {
            float acc = 0.0f;
            for (int j = std::max(c - half, 0); j <= std::min(c + half, in.c - 1); ++j) {
              const float v = x[in.index(n, j, h, w)];
              acc += v * v;
            }
            const std::size_t idx = in.index(n, c, h, w);
            s[idx] = 1.0f + alpha_over_n * acc;
            y[idx] = x[idx] * std::pow(s[idx], -spec_.lrn_beta);
          }
        }
      }
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const Nchw in(*bottoms[0]);
    auto x = bottoms[0]->data();
    auto dx = bottoms[0]->diff();
    auto y = tops[0]->data();
    auto dy = tops[0]->diff();
    auto s = scale_.data();
    const int half = spec_.lrn_size / 2;
    const float alpha_over_n = spec_.lrn_alpha / static_cast<float>(spec_.lrn_size);
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        for (int h = 0; h < in.h; ++h) {
          for (int w = 0; w < in.w; ++w) {
            const std::size_t idx = in.index(n, c, h, w);
            // dx_i = dy_i * s_i^{-beta}
            //      - 2*alpha*beta/n * x_i * sum_{j: i in window(j)} dy_j y_j / s_j
            float cross = 0.0f;
            for (int j = std::max(c - half, 0); j <= std::min(c + half, in.c - 1); ++j) {
              const std::size_t jdx = in.index(n, j, h, w);
              cross += dy[jdx] * y[jdx] / s[jdx];
            }
            dx[idx] = dy[idx] * std::pow(s[idx], -spec_.lrn_beta) -
                      2.0f * alpha_over_n * spec_.lrn_beta * x[idx] * cross;
          }
        }
      }
    }
  }

 private:
  Blob scale_;
};

}  // namespace

namespace detail {

std::unique_ptr<Layer> make_spatial_layer(const LayerSpec& spec) {
  switch (spec.type) {
    case LayerType::Convolution: return std::make_unique<ConvolutionLayer>(spec);
    case LayerType::Pooling: return std::make_unique<PoolingLayer>(spec);
    case LayerType::LRN: return std::make_unique<LrnLayer>(spec);
    default: throw std::runtime_error("make_spatial_layer: unsupported type");
  }
}

}  // namespace detail

}  // namespace scaffe::dl
