#include "dl/solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gpu/kernels.h"

namespace scaffe::dl {

SgdSolver::SgdSolver(NetSpec net_spec, SolverConfig config, gpu::Device* device)
    : config_(config), net_(std::move(net_spec), config.seed, device) {
  momentum_.reserve(net_.params().size());
  for (const Blob* param : net_.params()) {
    momentum_.emplace_back(param->count(), 0.0f);
  }
}

float SgdSolver::learning_rate() const noexcept {
  switch (config_.lr_policy) {
    case SolverConfig::LrPolicy::Fixed:
      return config_.base_lr;
    case SolverConfig::LrPolicy::Step:
      return config_.base_lr *
             std::pow(config_.gamma, static_cast<float>(iteration_ / config_.step_size));
  }
  return config_.base_lr;
}

float SgdSolver::step(std::span<const float> data, std::span<const float> labels) {
  Blob& data_blob = net_.blob("data");
  Blob& label_blob = net_.blob("label");
  if (data.size() != data_blob.count() || labels.size() != label_blob.count()) {
    throw std::runtime_error("SgdSolver::step: batch size mismatch");
  }
  std::copy(data.begin(), data.end(), data_blob.data().begin());
  std::copy(labels.begin(), labels.end(), label_blob.data().begin());
  return step_preloaded();
}

float SgdSolver::step_preloaded() {
  net_.set_iteration(iteration_);
  net_.zero_param_diffs();
  const float loss = net_.forward();
  net_.backward();
  return loss;
}

double SgdSolver::diff_l2_norm() const {
  double sum_sq = 0.0;
  for (const Blob* param : net_.params()) {
    for (float v : param->diff()) sum_sq += static_cast<double>(v) * v;
  }
  return std::sqrt(sum_sq);
}

std::size_t SgdSolver::state_count() const noexcept {
  std::size_t total = 0;
  for (const auto& buffer : momentum_) total += buffer.size();
  return total;
}

void SgdSolver::flatten_state(std::span<float> out) const {
  if (out.size() != state_count()) {
    throw std::runtime_error("SgdSolver::flatten_state: size mismatch");
  }
  std::size_t offset = 0;
  for (const auto& buffer : momentum_) {
    std::copy(buffer.begin(), buffer.end(), out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += buffer.size();
  }
}

void SgdSolver::unflatten_state(std::span<const float> in) {
  if (in.size() != state_count()) {
    throw std::runtime_error("SgdSolver::unflatten_state: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& buffer : momentum_) {
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(offset),
              in.begin() + static_cast<std::ptrdiff_t>(offset + buffer.size()), buffer.begin());
    offset += buffer.size();
  }
}

void SgdSolver::apply_update() {
  if (config_.clip_gradients > 0.0f) {
    const double norm = diff_l2_norm();
    if (norm > config_.clip_gradients) {
      net_.scale_diffs(static_cast<float>(config_.clip_gradients / norm));
    }
  }
  const float lr = learning_rate();
  const auto& params = net_.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    gpu::sgd_update(params[i]->data(), params[i]->diff(), momentum_[i], lr, config_.momentum,
                    config_.weight_decay);
  }
  ++iteration_;
}

}  // namespace scaffe::dl
