// Text format for NetSpecs — the moral equivalent of Caffe's prototxt, kept
// deliberately line-oriented so model definitions can live in files or be
// embedded in experiment scripts.
//
//   # comment
//   name: cifar10_quick
//   input data 8 3 32 32
//   input label 8
//   conv conv1 data conv1 32 5 1 2        # name bottom top out k stride pad
//   pool pool1 conv1 pool1 max 3 2 0      # name bottom top max|ave k stride pad
//   relu relu1 pool1 relu1
//   lrn norm1 relu1 norm1
//   dropout drop1 relu1 drop1 0.5
//   ip ip1 pool3 ip1 64
//   split sp ip2 a b
//   concat cc a b -> cc_out               # bottoms... -> top
//   softmax sm fc sm
//   softmax_loss loss ip2 label loss
//   accuracy acc ip2 label acc
#pragma once

#include <stdexcept>
#include <string>

#include "dl/net.h"

namespace scaffe::dl {

class NetSpecParseError : public std::runtime_error {
 public:
  NetSpecParseError(int line, const std::string& what)
      : std::runtime_error("netspec line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses the text format above; throws NetSpecParseError on bad input.
NetSpec parse_netspec(const std::string& text);

/// Serializes a NetSpec back to the text format (round-trips with
/// parse_netspec for every spec this library produces).
std::string netspec_to_text(const NetSpec& spec);

}  // namespace scaffe::dl
