// Non-spatial layers: InnerProduct, ReLU, Dropout, Softmax,
// SoftmaxWithLoss, Accuracy, Concat.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dl/layer.h"
#include "dl/math.h"

namespace scaffe::dl {
namespace {

/// Flattened (N, D) view of a blob: leading axis is the batch.
std::pair<int, int> as_matrix(const Blob& blob) {
  const int n = blob.num();
  const int d = n > 0 ? static_cast<int>(blob.count()) / n : 0;
  return {n, d};
}

class InnerProductLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng& rng) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    in_dim_ = d;
    weight_ = add_param({spec_.num_output, d});
    bias_ = add_param({spec_.num_output});
    // MSRA/He initialization: suited to the ReLU nets of the paper's era.
    const float stddev = std::sqrt(2.0f / static_cast<float>(d));
    for (float& w : weight_->data()) w = static_cast<float>(rng.normal(0.0, stddev));
    tops[0]->reshape({n, spec_.num_output});
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    const int k = spec_.num_output;
    const float* x = bottoms[0]->data().data();
    const float* w = weight_->data().data();
    auto b = bias_->data();
    float* y = tops[0]->data().data();
    // Seed each output row with the bias, then y += x * W^T.
    for (int i = 0; i < n; ++i) {
      std::copy(b.begin(), b.end(), y + static_cast<std::size_t>(i) * static_cast<std::size_t>(k));
    }
    if (n == 1) {
      math::gemv(false, k, d, 1.0f, w, x, 1.0f, y);
    } else {
      math::sgemm(false, true, n, k, d, 1.0f, x, w, 1.0f, y);
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    const int k = spec_.num_output;
    const float* x = bottoms[0]->data().data();
    float* dx = bottoms[0]->diff().data();
    const float* w = weight_->data().data();
    float* dw = weight_->diff().data();
    auto db = bias_->diff();
    const float* dy = tops[0]->diff().data();
    // db[o] += sum_i dy[i, o]
    for (int i = 0; i < n; ++i) {
      const float* dyrow = dy + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
      for (int o = 0; o < k; ++o) db[static_cast<std::size_t>(o)] += dyrow[o];
    }
    // dW += dy^T * x ; dx = dy * W
    math::sgemm(true, false, k, d, n, 1.0f, dy, x, 1.0f, dw);
    math::sgemm(false, false, n, d, k, 1.0f, dy, w, 0.0f, dx);
  }

 private:
  int in_dim_ = 0;
  Blob* weight_ = nullptr;
  Blob* bias_ = nullptr;
};

class ReluLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto x = bottoms[0]->data();
    auto dx = bottoms[0]->diff();
    auto dy = tops[0]->diff();
    for (std::size_t i = 0; i < x.size(); ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  }
};

class DropoutLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng& rng) override {
    tops[0]->reshape(bottoms[0]->shape());
    mask_.assign(bottoms[0]->count(), 1.0f);
    seed_ = rng();
  }

  void set_iteration(long iteration) override { iteration_ = iteration; }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const float ratio = spec_.dropout_ratio;
    const float scale = 1.0f / (1.0f - ratio);
    util::Rng rng(seed_ ^ static_cast<std::uint64_t>(iteration_ * 0x9e3779b9));
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      mask_[i] = rng.uniform() < ratio ? 0.0f : scale;
      y[i] = x[i] * mask_[i];
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto dx = bottoms[0]->diff();
    auto dy = tops[0]->diff();
    for (std::size_t i = 0; i < dx.size(); ++i) dx[i] = dy[i] * mask_[i];
  }

 private:
  std::vector<float> mask_;
  std::uint64_t seed_ = 0;
  long iteration_ = 0;
};

void softmax_rows(std::span<const float> x, std::span<float> y, int n, int d) {
  for (int i = 0; i < n; ++i) {
    const std::size_t row = static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float max_v = x[row];
    for (int j = 1; j < d; ++j) max_v = std::max(max_v, x[row + static_cast<std::size_t>(j)]);
    float sum = 0.0f;
    for (int j = 0; j < d; ++j) {
      const float e = std::exp(x[row + static_cast<std::size_t>(j)] - max_v);
      y[row + static_cast<std::size_t>(j)] = e;
      sum += e;
    }
    for (int j = 0; j < d; ++j) y[row + static_cast<std::size_t>(j)] /= sum;
  }
}

class SoftmaxLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    softmax_rows(bottoms[0]->data(), tops[0]->data(), n, d);
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    auto y = tops[0]->data();
    auto dy = tops[0]->diff();
    auto dx = bottoms[0]->diff();
    for (int i = 0; i < n; ++i) {
      const std::size_t row = static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      double dot = 0.0;
      for (int j = 0; j < d; ++j) {
        dot += static_cast<double>(dy[row + static_cast<std::size_t>(j)]) *
               y[row + static_cast<std::size_t>(j)];
      }
      for (int j = 0; j < d; ++j) {
        const std::size_t k = row + static_cast<std::size_t>(j);
        dx[k] = (dy[k] - static_cast<float>(dot)) * y[k];
      }
    }
  }
};

class SoftmaxWithLossLayer final : public Layer {
 public:
  using Layer::Layer;

  bool is_loss() const override { return true; }

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    probs_.reshape(bottoms[0]->shape());
    tops[0]->reshape({1});
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    softmax_rows(bottoms[0]->data(), probs_.data(), n, d);
    auto labels = bottoms[1]->data();
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
      const int label = static_cast<int>(labels[static_cast<std::size_t>(i)]);
      if (label < 0 || label >= d) throw std::runtime_error("SoftmaxWithLoss: label out of range");
      const float p = probs_.data()[static_cast<std::size_t>(i) * static_cast<std::size_t>(d) +
                                    static_cast<std::size_t>(label)];
      loss -= std::log(std::max(p, 1e-12f));
    }
    tops[0]->data()[0] = static_cast<float>(loss / std::max(n, 1));
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    const float loss_weight = tops[0]->diff()[0];
    auto labels = bottoms[1]->data();
    auto dx = bottoms[0]->diff();
    auto p = probs_.data();
    const float scale = loss_weight / static_cast<float>(std::max(n, 1));
    for (int i = 0; i < n; ++i) {
      const int label = static_cast<int>(labels[static_cast<std::size_t>(i)]);
      const std::size_t row = static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      for (int j = 0; j < d; ++j) {
        const std::size_t k = row + static_cast<std::size_t>(j);
        dx[k] = scale * (p[k] - (j == label ? 1.0f : 0.0f));
      }
    }
  }

 private:
  Blob probs_;
};

class AccuracyLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    (void)bottoms;
    tops[0]->reshape({1});
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const auto [n, d] = as_matrix(*bottoms[0]);
    auto scores = bottoms[0]->data();
    auto labels = bottoms[1]->data();
    int correct = 0;
    for (int i = 0; i < n; ++i) {
      const std::size_t row = static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      int best = 0;
      for (int j = 1; j < d; ++j) {
        if (scores[row + static_cast<std::size_t>(j)] > scores[row + static_cast<std::size_t>(best)])
          best = j;
      }
      if (best == static_cast<int>(labels[static_cast<std::size_t>(i)])) ++correct;
    }
    tops[0]->data()[0] = static_cast<float>(correct) / static_cast<float>(std::max(n, 1));
  }

  void backward(const std::vector<Blob*>&, const std::vector<Blob*>&) override {
    // Accuracy is evaluation-only; no gradient.
  }
};

class ConcatLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    // Concatenate along axis 1 (channels); all other axes must match.
    std::vector<int> shape = bottoms[0]->shape();
    int channels = 0;
    for (const Blob* bottom : bottoms) {
      if (bottom->shape().size() != shape.size() || bottom->shape(0) != shape[0]) {
        throw std::runtime_error("Concat: incompatible bottom shapes");
      }
      channels += bottom->shape(1);
    }
    shape[1] = channels;
    tops[0]->reshape(shape);
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    const int n = bottoms[0]->num();
    auto y = tops[0]->data();
    const std::size_t top_row = tops[0]->count() / static_cast<std::size_t>(std::max(n, 1));
    std::size_t offset = 0;
    for (const Blob* bottom : bottoms) {
      auto x = bottom->data();
      const std::size_t row = bottom->count() / static_cast<std::size_t>(std::max(n, 1));
      for (int i = 0; i < n; ++i) {
        std::copy_n(x.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i) * row),
                    row,
                    y.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(i) * top_row + offset));
      }
      offset += row;
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    const int n = bottoms[0]->num();
    auto dy = tops[0]->diff();
    const std::size_t top_row = tops[0]->count() / static_cast<std::size_t>(std::max(n, 1));
    std::size_t offset = 0;
    for (Blob* bottom : bottoms) {
      auto dx = bottom->diff();
      const std::size_t row = bottom->count() / static_cast<std::size_t>(std::max(n, 1));
      for (int i = 0; i < n; ++i) {
        std::copy_n(dy.begin() + static_cast<std::ptrdiff_t>(
                                     static_cast<std::size_t>(i) * top_row + offset),
                    row,
                    dx.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i) * row));
      }
      offset += row;
    }
  }
};

class SigmoidLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto y = tops[0]->data();
    auto dy = tops[0]->diff();
    auto dx = bottoms[0]->diff();
    for (std::size_t i = 0; i < dx.size(); ++i) dx[i] = dy[i] * y[i] * (1.0f - y[i]);
  }
};

class TanhLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    tops[0]->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    auto x = bottoms[0]->data();
    auto y = tops[0]->data();
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto y = tops[0]->data();
    auto dy = tops[0]->diff();
    auto dx = bottoms[0]->diff();
    for (std::size_t i = 0; i < dx.size(); ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  }
};

/// Elementwise sum join: the residual-connection primitive.
class EltwiseSumLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    for (const Blob* bottom : bottoms) {
      if (bottom->shape() != bottoms[0]->shape()) {
        throw std::runtime_error("EltwiseSum: bottom shapes differ");
      }
    }
    tops[0]->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    auto y = tops[0]->data();
    std::fill(y.begin(), y.end(), 0.0f);
    for (const Blob* bottom : bottoms) {
      auto x = bottom->data();
      for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
    }
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto dy = tops[0]->diff();
    for (Blob* bottom : bottoms) {
      auto dx = bottom->diff();
      std::copy(dy.begin(), dy.end(), dx.begin());
    }
  }
};

/// Fan-out: copies the bottom to every top; backward sums the top diffs —
/// the Caffe mechanism that lets one blob feed several layers (inception).
class SplitLayer final : public Layer {
 public:
  using Layer::Layer;

  void setup(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops,
             util::Rng&) override {
    for (Blob* top : tops) top->reshape(bottoms[0]->shape());
  }

  void forward(const std::vector<Blob*>& bottoms, const std::vector<Blob*>& tops) override {
    auto x = bottoms[0]->data();
    for (Blob* top : tops) std::copy(x.begin(), x.end(), top->data().begin());
  }

  void backward(const std::vector<Blob*>& tops, const std::vector<Blob*>& bottoms) override {
    auto dx = bottoms[0]->diff();
    std::fill(dx.begin(), dx.end(), 0.0f);
    for (const Blob* top : tops) {
      auto dy = top->diff();
      for (std::size_t i = 0; i < dx.size(); ++i) dx[i] += dy[i];
    }
  }
};

}  // namespace

namespace detail {

std::unique_ptr<Layer> make_simple_layer(const LayerSpec& spec) {
  switch (spec.type) {
    case LayerType::InnerProduct: return std::make_unique<InnerProductLayer>(spec);
    case LayerType::ReLU: return std::make_unique<ReluLayer>(spec);
    case LayerType::Dropout: return std::make_unique<DropoutLayer>(spec);
    case LayerType::Softmax: return std::make_unique<SoftmaxLayer>(spec);
    case LayerType::SoftmaxWithLoss: return std::make_unique<SoftmaxWithLossLayer>(spec);
    case LayerType::Accuracy: return std::make_unique<AccuracyLayer>(spec);
    case LayerType::Concat: return std::make_unique<ConcatLayer>(spec);
    case LayerType::Split: return std::make_unique<SplitLayer>(spec);
    case LayerType::Sigmoid: return std::make_unique<SigmoidLayer>(spec);
    case LayerType::TanH: return std::make_unique<TanhLayer>(spec);
    case LayerType::EltwiseSum: return std::make_unique<EltwiseSumLayer>(spec);
    default: throw std::runtime_error("make_simple_layer: unsupported type");
  }
}

}  // namespace detail

}  // namespace scaffe::dl
