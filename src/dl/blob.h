// Blob: the Caffe tensor — an N-d array carrying both data and diff
// (gradient) storage, the two views Section 2.2 describes ("parameter data
// used in the Forward pass and the parameter gradients calculated during the
// Backward pass").
#pragma once

#include <cassert>
#include <numeric>
#include <span>
#include <string>
#include <vector>

namespace scaffe::dl {

class Blob {
 public:
  Blob() = default;
  explicit Blob(std::vector<int> shape) { reshape(std::move(shape)); }

  void reshape(std::vector<int> shape) {
    shape_ = std::move(shape);
    std::size_t count = 1;
    for (int dim : shape_) {
      assert(dim >= 0);
      count *= static_cast<std::size_t>(dim);
    }
    data_.assign(count, 0.0f);
    diff_.assign(count, 0.0f);
  }

  const std::vector<int>& shape() const noexcept { return shape_; }
  int shape(int axis) const {
    assert(axis >= 0 && axis < static_cast<int>(shape_.size()));
    return shape_[static_cast<std::size_t>(axis)];
  }
  std::size_t count() const noexcept { return data_.size(); }

  /// Leading dimension (batch size) or 0 for an empty blob.
  int num() const noexcept { return shape_.empty() ? 0 : shape_[0]; }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }
  std::span<float> diff() noexcept { return diff_; }
  std::span<const float> diff() const noexcept { return diff_; }

  void zero_diff() noexcept { std::fill(diff_.begin(), diff_.end(), 0.0f); }
  void zero_data() noexcept { std::fill(data_.begin(), data_.end(), 0.0f); }

  std::string shape_string() const {
    std::string out = "(";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(shape_[i]);
    }
    return out + ")";
  }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
  std::vector<float> diff_;
};

}  // namespace scaffe::dl
