#include "dl/math.h"

#include <algorithm>
#include <cstddef>

#include "util/thread_pool.h"

namespace scaffe::dl::math {
namespace {

// Panel sizes: a KxJ panel of B (128*128 floats = 64 KB) stays L2-resident
// while each k-step touches one 512-byte B row slice and one C row slice.
constexpr int kJBlock = 128;
constexpr int kKBlock = 128;

// Multiply-accumulates per parallel chunk; rows-per-chunk is derived from the
// problem shape only, keeping chunk boundaries thread-count-invariant.
constexpr std::size_t kMacsPerChunk = std::size_t{1} << 21;

std::size_t rows_per_chunk(int n, int k) {
  const std::size_t row_macs =
      std::max<std::size_t>(static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 1);
  return std::max<std::size_t>(kMacsPerChunk / row_macs, 1);
}

/// beta prologue for C rows [i0, i1): scale in place (beta == 0 overwrites).
void scale_rows(float* c, int ldc, int i0, int i1, float beta) {
  if (beta == 1.0f) return;
  float* row = c + static_cast<std::size_t>(i0) * static_cast<std::size_t>(ldc);
  float* end = c + static_cast<std::size_t>(i1) * static_cast<std::size_t>(ldc);
  if (beta == 0.0f) {
    std::fill(row, end, 0.0f);
  } else {
    for (; row != end; ++row) *row *= beta;
  }
}

/// C rows [i0,i1) += alpha * op(A) * B with B stored K×N. The i-k-j order
/// streams B rows (vectorizable over j); k is register-blocked by 4, which
/// fixes each C element's accumulation order independent of threading.
template <bool TransA>
void accumulate_rows_bn(int i0, int i1, int m, int n, int k, float alpha, const float* a,
                        const float* b, float* c) {
  const auto a_at = [&](int i, int p) -> float {
    if constexpr (TransA) {
      return a[static_cast<std::size_t>(p) * static_cast<std::size_t>(m) +
               static_cast<std::size_t>(i)];
    } else {
      return a[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(p)];
    }
  };
  for (int jj = 0; jj < n; jj += kJBlock) {
    const int jend = std::min(jj + kJBlock, n);
    for (int kk = 0; kk < k; kk += kKBlock) {
      const int kend = std::min(kk + kKBlock, k);
      for (int i = i0; i < i1; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
        int p = kk;
        for (; p + 4 <= kend; p += 4) {
          const float a0 = alpha * a_at(i, p);
          const float a1 = alpha * a_at(i, p + 1);
          const float a2 = alpha * a_at(i, p + 2);
          const float a3 = alpha * a_at(i, p + 3);
          const float* b0 = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
          const float* b1 = b0 + n;
          const float* b2 = b1 + n;
          const float* b3 = b2 + n;
          for (int j = jj; j < jend; ++j) {
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; p < kend; ++p) {
          const float a0 = alpha * a_at(i, p);
          const float* b0 = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
          for (int j = jj; j < jend; ++j) crow[j] += a0 * b0[j];
        }
      }
    }
  }
}

/// C rows [i0,i1) += alpha * A * B^T with A stored M×K, B stored N×K: both
/// operands are contiguous rows, so each C element is a dot product. Four
/// partial sums combine in a fixed order before the tail.
void accumulate_rows_nt(int i0, int i1, int n, int k, float alpha, const float* a,
                        const float* b, float* c) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    float* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * static_cast<std::size_t>(k);
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      int p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += arow[p] * brow[p];
        s1 += arow[p + 1] * brow[p + 1];
        s2 += arow[p + 2] * brow[p + 2];
        s3 += arow[p + 3] * brow[p + 3];
      }
      float s = (s0 + s1) + (s2 + s3);
      for (; p < k; ++p) s += arow[p] * brow[p];
      crow[j] += alpha * s;
    }
  }
}

/// C rows [i0,i1) += alpha * A^T * B^T (both strided; rare, kept simple).
void accumulate_rows_tt(int i0, int i1, int m, int n, int k, float alpha, const float* a,
                        const float* b, float* c) {
  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * static_cast<std::size_t>(k);
      float s = 0.0f;
      for (int p = 0; p < k; ++p) {
        s += a[static_cast<std::size_t>(p) * static_cast<std::size_t>(m) +
               static_cast<std::size_t>(i)] *
             brow[p];
      }
      crow[j] += alpha * s;
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, int m, int n, int k, float alpha, const float* a,
           const float* b, float beta, float* c) {
  if (m <= 0 || n <= 0) return;
  const std::size_t grain = rows_per_chunk(n, k);
  util::parallel_for(
      0, static_cast<std::size_t>(m), grain, [&](std::size_t block_begin, std::size_t block_end) {
        const int i0 = static_cast<int>(block_begin);
        const int i1 = static_cast<int>(block_end);
        scale_rows(c, n, i0, i1, beta);
        if (k <= 0 || alpha == 0.0f) return;
        if (!trans_b) {
          if (trans_a) {
            accumulate_rows_bn<true>(i0, i1, m, n, k, alpha, a, b, c);
          } else {
            accumulate_rows_bn<false>(i0, i1, m, n, k, alpha, a, b, c);
          }
        } else if (!trans_a) {
          accumulate_rows_nt(i0, i1, n, k, alpha, a, b, c);
        } else {
          accumulate_rows_tt(i0, i1, m, n, k, alpha, a, b, c);
        }
      });
}

void gemv(bool trans, int m, int n, float alpha, const float* a, const float* x, float beta,
          float* y) {
  if (!trans) {
    // y_i = alpha * dot(A row i, x) + beta * y_i
    if (m <= 0) return;
    const std::size_t grain = rows_per_chunk(n, 1);
    util::parallel_for(0, static_cast<std::size_t>(m), grain,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           const float* arow = a + i * static_cast<std::size_t>(n);
                           float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
                           int p = 0;
                           for (; p + 4 <= n; p += 4) {
                             s0 += arow[p] * x[p];
                             s1 += arow[p + 1] * x[p + 1];
                             s2 += arow[p + 2] * x[p + 2];
                             s3 += arow[p + 3] * x[p + 3];
                           }
                           float s = (s0 + s1) + (s2 + s3);
                           for (; p < n; ++p) s += arow[p] * x[p];
                           y[i] = (beta == 0.0f ? 0.0f : beta * y[i]) + alpha * s;
                         }
                       });
    return;
  }
  // y_j = alpha * sum_i A[i][j] * x_i + beta * y_j; parallel over j ranges,
  // each accumulating i in ascending order.
  if (n <= 0) return;
  const std::size_t grain = rows_per_chunk(m, 1);
  util::parallel_for(0, static_cast<std::size_t>(n), grain,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t j = begin; j < end; ++j) {
                         y[j] = beta == 0.0f ? 0.0f : beta * y[j];
                       }
                       for (int i = 0; i < m; ++i) {
                         const float xi = alpha * x[i];
                         const float* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
                         for (std::size_t j = begin; j < end; ++j) y[j] += xi * arow[j];
                       }
                     });
}

}  // namespace scaffe::dl::math
