#include "models/zoo.h"

namespace scaffe::models {

using dl::LayerSpec;
using dl::NetSpec;
using dl::PoolMethod;

NetSpec cifar10_quick_netspec(int batch, bool with_accuracy) {
  NetSpec spec;
  spec.name = "cifar10_quick";
  spec.inputs = {{"data", {batch, 3, 32, 32}}, {"label", {batch}}};
  spec.layers = {
      LayerSpec::conv("conv1", "data", "conv1", 32, 5, 1, 2),
      LayerSpec::pool("pool1", "conv1", "pool1", 3, 2, PoolMethod::Max),
      LayerSpec::relu("relu1", "pool1", "relu1"),
      LayerSpec::conv("conv2", "relu1", "conv2", 32, 5, 1, 2),
      LayerSpec::relu("relu2", "conv2", "relu2"),
      LayerSpec::pool("pool2", "relu2", "pool2", 3, 2, PoolMethod::Ave),
      LayerSpec::conv("conv3", "pool2", "conv3", 64, 5, 1, 2),
      LayerSpec::relu("relu3", "conv3", "relu3"),
      LayerSpec::pool("pool3", "relu3", "pool3", 3, 2, PoolMethod::Ave),
      LayerSpec::inner_product("ip1", "pool3", "ip1", 64),
      LayerSpec::inner_product("ip2", "ip1", "ip2", 10),
  };
  if (with_accuracy) {
    spec.layers.push_back(LayerSpec::split("ip2_split", "ip2", {"ip2_loss", "ip2_acc"}));
    spec.layers.push_back(LayerSpec::softmax_loss("loss", "ip2_loss", "label", "loss"));
    spec.layers.push_back(LayerSpec::accuracy("accuracy", "ip2_acc", "label", "accuracy"));
  } else {
    spec.layers.push_back(LayerSpec::softmax_loss("loss", "ip2", "label", "loss"));
  }
  return spec;
}

NetSpec mlp_netspec(int batch, int in_dim, int hidden, int classes) {
  NetSpec spec;
  spec.name = "mlp";
  spec.inputs = {{"data", {batch, in_dim}}, {"label", {batch}}};
  spec.layers = {
      LayerSpec::inner_product("fc1", "data", "fc1", hidden),
      LayerSpec::relu("relu1", "fc1", "relu1"),
      LayerSpec::inner_product("fc2", "relu1", "fc2", classes),
      LayerSpec::softmax_loss("loss", "fc2", "label", "loss"),
  };
  return spec;
}

NetSpec lenet_netspec(int batch) {
  NetSpec spec;
  spec.name = "lenet";
  spec.inputs = {{"data", {batch, 1, 28, 28}}, {"label", {batch}}};
  spec.layers = {
      LayerSpec::conv("conv1", "data", "conv1", 20, 5),
      LayerSpec::pool("pool1", "conv1", "pool1", 2, 2, PoolMethod::Max),
      LayerSpec::conv("conv2", "pool1", "conv2", 50, 5),
      LayerSpec::pool("pool2", "conv2", "pool2", 2, 2, PoolMethod::Max),
      LayerSpec::inner_product("ip1", "pool2", "ip1", 500),
      LayerSpec::relu("relu1", "ip1", "relu1"),
      LayerSpec::inner_product("ip2", "relu1", "ip2", 10),
      LayerSpec::softmax_loss("loss", "ip2", "label", "loss"),
  };
  return spec;
}

NetSpec mini_alexnet_netspec(int batch, int classes) {
  NetSpec spec;
  spec.name = "mini_alexnet";
  spec.inputs = {{"data", {batch, 3, 16, 16}}, {"label", {batch}}};
  spec.layers = {
      LayerSpec::conv("conv1", "data", "conv1", 16, 3, 1, 1),
      LayerSpec::relu("relu1", "conv1", "relu1"),
      LayerSpec::lrn("norm1", "relu1", "norm1"),
      LayerSpec::pool("pool1", "norm1", "pool1", 2, 2, PoolMethod::Max),
      LayerSpec::conv("conv2", "pool1", "conv2", 32, 3, 1, 1),
      LayerSpec::relu("relu2", "conv2", "relu2"),
      LayerSpec::pool("pool2", "relu2", "pool2", 2, 2, PoolMethod::Max),
      LayerSpec::inner_product("fc1", "pool2", "fc1", 64),
      LayerSpec::relu("relu3", "fc1", "relu3"),
      LayerSpec::dropout("drop1", "relu3", "drop1", 0.5f),
      LayerSpec::inner_product("fc2", "drop1", "fc2", classes),
      LayerSpec::softmax_loss("loss", "fc2", "label", "loss"),
  };
  return spec;
}

NetSpec tiny_inception_netspec(int batch, int classes) {
  NetSpec spec;
  spec.name = "tiny_inception";
  spec.inputs = {{"data", {batch, 3, 16, 16}}, {"label", {batch}}};
  // pool branch: stride 1 with pad 1 keeps the 16x16 shape of the conv
  // branches so the channel concat lines up.
  LayerSpec pool_branch = LayerSpec::pool("bp_pool", "branch_in_p", "bp", 3, 1, PoolMethod::Max);
  pool_branch.pad = 1;
  spec.layers = {
      LayerSpec::conv("stem", "data", "stem", 8, 3, 1, 1),
      LayerSpec::relu("stem_relu", "stem", "stem_out"),
      LayerSpec::split("fanout", "stem_out", {"branch_in_1", "branch_in_3", "branch_in_p"}),
      LayerSpec::conv("b1_conv", "branch_in_1", "b1", 8, 1),       // 1x1 branch
      LayerSpec::conv("b3_conv", "branch_in_3", "b3", 8, 3, 1, 1),  // 3x3 branch
      pool_branch,
      LayerSpec::concat("concat", {"b1", "b3", "bp"}, "inception_out"),
      LayerSpec::relu("out_relu", "inception_out", "features"),
      LayerSpec::inner_product("fc", "features", "fc", classes),
      LayerSpec::softmax_loss("loss", "fc", "label", "loss"),
  };
  return spec;
}

}  // namespace scaffe::models
