// Cost descriptors for the paper's networks.
//
// The performance substrate does not run AlexNet/GoogLeNet math; it needs
// each layer's (a) learnable parameter count — which sets the broadcast and
// gradient-aggregation message sizes (AlexNet's ~61 M parameters = ~244 MB is
// the paper's "256 MB" requirement) — and (b) forward/backward FLOPs per
// sample, which set the compute time the communication must hide behind.
// Counts follow the published BVLC model definitions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scaffe::models {

struct LayerCost {
  std::string name;
  std::size_t param_count = 0;        // learnable floats
  double fwd_flops = 0.0;             // per sample
  double bwd_flops = 0.0;             // per sample
  std::size_t activation_floats = 0;  // per sample (top blobs)
};

struct ModelDesc {
  std::string name;
  std::vector<LayerCost> layers;

  std::size_t param_count() const noexcept;
  std::size_t param_bytes() const noexcept { return param_count() * sizeof(float); }
  double fwd_flops_per_sample() const noexcept;
  double bwd_flops_per_sample() const noexcept;
  std::size_t activation_bytes_per_sample() const noexcept;

  /// Communication-to-computation intensity: bytes moved per iteration per
  /// FLOP of backward compute. GoogLeNet is "communication-intensive"
  /// (Section 6.3) — small compute per parameter relative to CIFAR10-quick.
  double comm_intensity(int batch_per_gpu) const noexcept;

  static ModelDesc alexnet();
  static ModelDesc caffenet();
  static ModelDesc googlenet();
  static ModelDesc cifar10_quick();
  static ModelDesc vgg16();
  static ModelDesc lenet();
};

}  // namespace scaffe::models
