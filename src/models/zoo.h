// Runnable NetSpecs for the functional substrate: the real (CPU-float) nets
// the tests, examples, and small-scale distributed training runs execute.
#pragma once

#include "dl/net.h"

namespace scaffe::models {

/// The reference cifar10_quick network: 3x(conv-pool-relu) + 2 FC, 10-way.
/// Input blobs: "data" (batch,3,32,32), "label" (batch).
dl::NetSpec cifar10_quick_netspec(int batch, bool with_accuracy = false);

/// A small MLP on flat features: data (batch, in_dim) -> hidden -> classes.
dl::NetSpec mlp_netspec(int batch, int in_dim, int hidden, int classes);

/// LeNet-style MNIST net: data (batch,1,28,28), 10-way.
dl::NetSpec lenet_netspec(int batch);

/// A miniature AlexNet-flavoured net (conv+LRN+dropout+FC) on 3x16x16 inputs
/// — exercises every layer type the paper-era nets use at test-friendly cost.
dl::NetSpec mini_alexnet_netspec(int batch, int classes = 10);

/// A one-module inception-style net (parallel 1x1 / 3x3 / pool branches
/// concatenated) on 3x16x16 inputs — exercises the DAG/Concat path.
dl::NetSpec tiny_inception_netspec(int batch, int classes = 10);

}  // namespace scaffe::models
