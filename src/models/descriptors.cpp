#include "models/descriptors.h"

namespace scaffe::models {

namespace {
constexpr double kM = 1e6;

/// Convolution/FC layer: flops = 2 * MACs forward; backward needs the data
/// gradient and the weight gradient, ~2x the forward work.
LayerCost cost(std::string name, std::size_t params, double fwd_mflops,
               std::size_t activation_floats) {
  LayerCost c;
  c.name = std::move(name);
  c.param_count = params;
  c.fwd_flops = fwd_mflops * kM;
  c.bwd_flops = 2.0 * fwd_mflops * kM;
  c.activation_floats = activation_floats;
  return c;
}
}  // namespace

std::size_t ModelDesc::param_count() const noexcept {
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.param_count;
  return total;
}

double ModelDesc::fwd_flops_per_sample() const noexcept {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.fwd_flops;
  return total;
}

double ModelDesc::bwd_flops_per_sample() const noexcept {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.bwd_flops;
  return total;
}

std::size_t ModelDesc::activation_bytes_per_sample() const noexcept {
  std::size_t total = 0;
  // Data + diff storage per activation element.
  for (const auto& layer : layers) total += layer.activation_floats * 2 * sizeof(float);
  return total;
}

double ModelDesc::comm_intensity(int batch_per_gpu) const noexcept {
  const double flops =
      (fwd_flops_per_sample() + bwd_flops_per_sample()) * static_cast<double>(batch_per_gpu);
  return flops > 0.0 ? static_cast<double>(2 * param_bytes()) / flops : 0.0;
}

ModelDesc ModelDesc::alexnet() {
  // BVLC AlexNet (grouped convolutions), 1000-way ImageNet classifier.
  // Parameter total ~60.97 M floats (~244 MB) — the paper's 256 MB-class
  // aggregation buffer.
  ModelDesc m;
  m.name = "AlexNet";
  m.layers = {
      cost("conv1", 34'944, 211, 290'400),    // 96x3x11x11, out 55x55x96
      cost("norm1+pool1", 0, 12, 186'624),
      cost("conv2", 307'456, 448, 186'624),   // grouped 5x5, out 27x27x256
      cost("norm2+pool2", 0, 8, 64'896),
      cost("conv3", 885'120, 299, 64'896),    // 3x3, out 13x13x384
      cost("conv4", 663'936, 224, 64'896),    // grouped 3x3
      cost("conv5", 442'624, 150, 43'264),    // grouped 3x3, out 13x13x256
      cost("pool5", 0, 2, 9'216),
      cost("fc6", 37'752'832, 75.5, 4'096),
      cost("fc7", 16'781'312, 33.6, 4'096),
      cost("fc8", 4'097'000, 8.2, 1'000),
  };
  return m;
}

ModelDesc ModelDesc::caffenet() {
  // CaffeNet is AlexNet with pooling/normalization order swapped; identical
  // learnable-parameter footprint.
  ModelDesc m = alexnet();
  m.name = "CaffeNet";
  return m;
}

ModelDesc ModelDesc::googlenet() {
  // GoogLeNet (Inception v1): ~6.9 M parameters, ~1.57 G MACs per sample.
  // Communication-intensive relative to its compute (Section 6.3).
  ModelDesc m;
  m.name = "GoogLeNet";
  m.layers = {
      cost("conv1/7x7_s2", 9'472, 236, 802'816),
      cost("conv2/3x3", 115'008, 720, 401'408),
      cost("inception_3a", 159'136, 256, 200'704),
      cost("inception_3b", 308'736, 608, 313'600),
      cost("inception_4a", 375'936, 238, 100'352),
      cost("inception_4b", 448'832, 200, 100'352),
      cost("inception_4c", 509'696, 226, 100'352),
      cost("inception_4d", 604'928, 262, 103'488),
      cost("inception_4e", 868'384, 340, 130'560),
      cost("inception_5a", 1'043'968, 108, 40'768),
      cost("inception_5b", 1'444'608, 142, 50'176),
      cost("loss3/classifier", 1'025'000, 2.0, 1'000),
  };
  return m;
}

ModelDesc ModelDesc::cifar10_quick() {
  // The reference cifar10_quick solver: tiny parameters, conv-dominated
  // compute — the "compute-intensive model with small-scale communication"
  // of Figure 9.
  ModelDesc m;
  m.name = "CIFAR10-quick";
  m.layers = {
      cost("conv1", 2'432, 4.9, 32'768),   // 32x3x5x5, out 32x32x32
      cost("pool1", 0, 0.1, 8'192),
      cost("conv2", 25'632, 12.8, 8'192),  // 32x32x5x5, out 16x16x32
      cost("pool2", 0, 0.05, 2'048),
      cost("conv3", 51'264, 6.6, 4'096),   // 64x32x5x5, out 8x8x64
      cost("pool3", 0, 0.02, 1'024),
      cost("ip1", 65'600, 0.13, 64),
      cost("ip2", 650, 0.0013, 10),
  };
  return m;
}

ModelDesc ModelDesc::vgg16() {
  // VGG-16: the "bigger and deeper" direction the paper anticipates; 138 M
  // parameters (~552 MB gradients).
  ModelDesc m;
  m.name = "VGG16";
  m.layers = {
      cost("conv1_1", 1'792, 173, 3'211'264),
      cost("conv1_2", 36'928, 3'700, 3'211'264),
      cost("conv2_1", 73'856, 1'850, 1'605'632),
      cost("conv2_2", 147'584, 3'700, 1'605'632),
      cost("conv3_1", 295'168, 1'850, 802'816),
      cost("conv3_2", 590'080, 3'700, 802'816),
      cost("conv3_3", 590'080, 3'700, 802'816),
      cost("conv4_1", 1'180'160, 1'850, 401'408),
      cost("conv4_2", 2'359'808, 3'700, 401'408),
      cost("conv4_3", 2'359'808, 3'700, 401'408),
      cost("conv5_1", 2'359'808, 925, 100'352),
      cost("conv5_2", 2'359'808, 925, 100'352),
      cost("conv5_3", 2'359'808, 925, 100'352),
      cost("fc6", 102'764'544, 206, 4'096),
      cost("fc7", 16'781'312, 33.6, 4'096),
      cost("fc8", 4'097'000, 8.2, 1'000),
  };
  return m;
}

ModelDesc ModelDesc::lenet() {
  ModelDesc m;
  m.name = "LeNet";
  m.layers = {
      cost("conv1", 520, 0.6, 11'520),
      cost("pool1", 0, 0.01, 2'880),
      cost("conv2", 25'050, 1.6, 3'200),
      cost("pool2", 0, 0.005, 800),
      cost("ip1", 400'500, 0.8, 500),
      cost("ip2", 5'010, 0.01, 10),
  };
  return m;
}

}  // namespace scaffe::models
