// End-to-end user story: define a network in the text format, train it
// distributed with the Trainer (parallel readers + SC-OBR + HR), snapshot
// the parameters, and reload them into a fresh net.
//
// Usage: ./train_from_spec [ranks=4] [iterations=12]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>

#include "core/trainer.h"
#include "data/dataset.h"
#include "dl/netspec_text.h"
#include "dl/snapshot.h"
#include "mpi/comm.h"

using namespace scaffe;

namespace {

// A small MLP classifier over 16-float feature vectors, 4 classes.
constexpr const char* kSpecTemplate = R"(
name: spec_demo
input data %d 16
input label %d
ip fc1 data fc1 32
relu relu1 fc1 relu1
ip fc2 relu1 fc2 4
softmax_loss loss fc2 label loss
)";

dl::NetSpec make_spec(int batch) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), kSpecTemplate, batch, batch);
  return dl::parse_netspec(buffer);
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::string snapshot =
      std::filesystem::temp_directory_path() / "scaffe_train_from_spec.bin";

  std::printf("parsing model from text spec...\n");
  const dl::NetSpec preview = make_spec(4);
  std::printf("%s", dl::netspec_to_text(preview).c_str());

  data::SyntheticImageDataset dataset(4096, 1, 1, 16, 4);
  data::ImageDataBackend backend(dataset);

  std::mutex print_mutex;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    core::TrainerConfig config;
    config.iterations = iterations;
    config.global_batch = 8 * nranks;
    config.scaffe.variant = core::Variant::SCOBR;
    config.scaffe.reduce = core::ReduceAlgo::cb(2);
    config.solver.base_lr = 0.05f;
    config.snapshot_every = iterations;  // one final snapshot
    config.snapshot_path = snapshot;

    core::Trainer trainer(comm, backend, dataset.sample_floats(),
                          [](int batch) { return make_spec(batch); }, config);
    const core::TrainerReport report = trainer.run();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("\ntrained %ld iterations, %llu samples; loss %.4f -> %.4f; "
                  "%d snapshot(s) written\n",
                  report.iterations,
                  static_cast<unsigned long long>(report.samples_trained),
                  report.root_losses.front(), report.root_losses.back(),
                  report.snapshots_written);
    }
  });

  std::printf("reloading snapshot into a fresh net... ");
  dl::Net fresh(make_spec(8));
  dl::load_params(fresh, snapshot);
  std::printf("ok (%zu parameters restored)\n", fresh.param_count());
  std::filesystem::remove(snapshot);
  return 0;
}
