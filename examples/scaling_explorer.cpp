// Interactive what-if tool over the performance model: pick a model, a
// cluster, a GPU count, a batch, and a co-design variant; get the paper's
// per-phase iteration breakdown.
//
// Usage: ./scaling_explorer [model=googlenet|alexnet|vgg16|cifar10]
//                           [cluster=a|b] [gpus=64] [batch=1024]
//                           [variant=scobr|scob|scb] [chain=16]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/duration.h"

using namespace scaffe;

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "googlenet";
  const std::string cluster_name = argc > 2 ? argv[2] : "a";
  const int gpus = argc > 3 ? std::atoi(argv[3]) : 64;
  const int batch = argc > 4 ? std::atoi(argv[4]) : 1024;
  const std::string variant_name = argc > 5 ? argv[5] : "scobr";
  const int chain = argc > 6 ? std::atoi(argv[6]) : 16;

  core::TrainPerfConfig config;
  if (model_name == "alexnet") config.model = models::ModelDesc::alexnet();
  else if (model_name == "vgg16") config.model = models::ModelDesc::vgg16();
  else if (model_name == "cifar10") config.model = models::ModelDesc::cifar10_quick();
  else config.model = models::ModelDesc::googlenet();
  config.cluster =
      cluster_name == "b" ? net::ClusterSpec::cluster_b() : net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = batch;
  config.variant = variant_name == "scb"    ? core::Variant::SCB
                   : variant_name == "scob" ? core::Variant::SCOB
                                            : core::Variant::SCOBR;
  config.reduce = core::ReduceAlgo::cb(chain);

  std::printf("%s on %s: %d GPUs, global batch %d, %s + HR %s\n",
              config.model.name.c_str(), config.cluster.name.c_str(), gpus, batch,
              core::variant_name(config.variant), config.reduce.label().c_str());
  std::printf("model: %zu params (%s gradients), %.2f GFLOP fwd / sample\n",
              config.model.param_count(),
              util::fmt_bytes(config.model.param_bytes()).c_str(),
              config.model.fwd_flops_per_sample() / 1e9);

  const auto result = core::simulate_training_iteration(config);
  if (result.oom) {
    std::printf("=> OUT OF MEMORY: %d samples/GPU of %s do not fit a 12GB device\n",
                result.batch_per_gpu, config.model.name.c_str());
    return 0;
  }
  if (result.reader_failed) {
    std::printf("=> READER FAILURE: the backend cannot serve %d parallel readers\n", gpus);
    return 0;
  }

  std::printf("\nper-iteration breakdown (%d samples/GPU):\n", result.batch_per_gpu);
  std::printf("  propagation (exposed) : %10s\n", util::fmt_time(result.propagation_exposed).c_str());
  std::printf("  forward               : %10s\n", util::fmt_time(result.forward).c_str());
  std::printf("  backward              : %10s\n", util::fmt_time(result.backward).c_str());
  std::printf("  aggregation (exposed) : %10s\n", util::fmt_time(result.aggregation_exposed).c_str());
  std::printf("  update                : %10s\n", util::fmt_time(result.update).c_str());
  std::printf("  reader stall          : %10s\n", util::fmt_time(result.reader_stall).c_str());
  std::printf("  TOTAL                 : %10s  (%.0f samples/s)\n",
              util::fmt_time(result.total).c_str(), result.samples_per_sec);
  return 0;
}
