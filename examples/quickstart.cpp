// Quickstart: the S-Caffe public API in one file.
//
//  1. Build a Caffe-style Net from a spec and train it with the SGD solver.
//  2. Scale the same model out: 4 "GPU" ranks under the scmpi runtime, each
//     running a DistributedSolver with the SC-OBR co-design (per-layer
//     Ibcast propagation + helper-thread overlapped hierarchical reduce).
//
// Run:  ./quickstart
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/distributed_solver.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "mpi/comm.h"

using namespace scaffe;

namespace {

/// Loads a contiguous shard of the deterministic synthetic dataset.
void load_shard(const data::SyntheticImageDataset& dataset, int iteration, int global_batch,
                int rank, int shard, std::span<float> out_data, std::span<float> out_labels) {
  const std::size_t floats = dataset.sample_floats();
  for (int i = 0; i < shard; ++i) {
    const auto index =
        static_cast<std::uint64_t>(iteration * global_batch + rank * shard + i);
    const data::Sample sample = dataset.make_sample(index);
    std::copy(sample.image.begin(), sample.image.end(),
              out_data.begin() + static_cast<std::ptrdiff_t>(i * static_cast<int>(floats)));
    out_labels[static_cast<std::size_t>(i)] = static_cast<float>(sample.label);
  }
}

}  // namespace

int main() {
  std::printf("== 1. single-solver training (mini-Caffe) ==\n");
  {
    dl::SolverConfig config;
    config.base_lr = 0.01f;
    config.momentum = 0.9f;
    dl::SgdSolver solver(models::cifar10_quick_netspec(/*batch=*/8), config);
    std::printf("net: %s, %zu parameters\n", solver.net().name().c_str(),
                solver.net().param_count());

    data::SyntheticImageDataset dataset = data::SyntheticImageDataset::cifar10();
    std::vector<float> batch_data(8 * dataset.sample_floats());
    std::vector<float> batch_labels(8);
    for (int iteration = 0; iteration < 10; ++iteration) {
      load_shard(dataset, iteration, 8, 0, 8, batch_data, batch_labels);
      const float loss = solver.step(batch_data, batch_labels);
      solver.apply_update();
      if (iteration % 3 == 0) std::printf("  iter %2d  loss %.4f\n", iteration, loss);
    }
  }

  std::printf("\n== 2. distributed training: 4 ranks, SC-OBR + HR(CB-2) ==\n");
  {
    const int nranks = 4;
    const int global_batch = 16;
    const int shard = global_batch / nranks;
    data::SyntheticImageDataset dataset = data::SyntheticImageDataset::cifar10();

    std::mutex print_mutex;
    mpi::Runtime runtime(nranks);
    runtime.run([&](mpi::Comm& comm) {
      dl::SolverConfig solver_config;
      solver_config.base_lr = 0.01f;
      solver_config.momentum = 0.9f;

      core::ScaffeConfig scaffe_config;
      scaffe_config.variant = core::Variant::SCOBR;
      scaffe_config.reduce = core::ReduceAlgo::cb(2);

      core::DistributedSolver solver(comm, models::cifar10_quick_netspec(shard),
                                     solver_config, scaffe_config);

      std::vector<float> batch_data(shard * dataset.sample_floats());
      std::vector<float> batch_labels(shard);
      for (int iteration = 0; iteration < 10; ++iteration) {
        load_shard(dataset, iteration, global_batch, comm.rank(), shard, batch_data,
                   batch_labels);
        const core::IterationResult result =
            solver.train_iteration(batch_data, batch_labels);
        if (comm.rank() == 0 && iteration % 3 == 0) {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::printf("  iter %2d  root-shard loss %.4f  (variant %s, reduce %s)\n",
                      iteration, result.local_loss,
                      core::variant_name(scaffe_config.variant),
                      scaffe_config.reduce.label().c_str());
        }
      }
    });
  }

  std::printf("\ndone — both paths train the same model with the same math.\n");
  return 0;
}
