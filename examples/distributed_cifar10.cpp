// Distributed CIFAR10-quick training with the full S-Caffe stack: parallel
// data-reader threads (Figure 3) feeding per-process queues from an
// LMDB-like backend, one solver per rank, and a selectable co-design
// variant.
//
// Usage: ./distributed_cifar10 [ranks=4] [iterations=20] [batch=32]
//                              [variant=scobr|scob|scb] [chain=2]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "core/distributed_solver.h"
#include "data/backend.h"
#include "data/reader.h"
#include "models/zoo.h"
#include "mpi/comm.h"

using namespace scaffe;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 20;
  const int global_batch = argc > 3 ? std::atoi(argv[3]) : 32;
  core::Variant variant = core::Variant::SCOBR;
  if (argc > 4) {
    if (std::strcmp(argv[4], "scb") == 0) variant = core::Variant::SCB;
    if (std::strcmp(argv[4], "scob") == 0) variant = core::Variant::SCOB;
  }
  const int chain = argc > 5 ? std::atoi(argv[5]) : 2;
  const int shard = global_batch / nranks;
  if (shard < 1 || shard * nranks != global_batch) {
    std::fprintf(stderr, "batch %d must be divisible by ranks %d\n", global_batch, nranks);
    return 1;
  }

  std::printf("S-Caffe distributed CIFAR10-quick: %d ranks, batch %d (%d/rank), %s, HR CB-%d\n",
              nranks, global_batch, shard, core::variant_name(variant), chain);

  // One shared LMDB-like database; each process owns a reader thread and a
  // bounded prefetch queue (the Figure 3 design).
  data::SyntheticImageDataset dataset = data::SyntheticImageDataset::cifar10();
  data::LmdbBackend backend(dataset);

  std::mutex print_mutex;
  mpi::Runtime runtime(nranks);
  runtime.run([&](mpi::Comm& comm) {
    data::DataReader reader(backend, comm.rank(), nranks, shard, dataset.sample_floats());

    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.01f;
    solver_config.momentum = 0.9f;
    solver_config.weight_decay = 0.004f;  // the reference cifar10_quick value

    core::ScaffeConfig scaffe_config;
    scaffe_config.variant = variant;
    scaffe_config.reduce = core::ReduceAlgo::cb(chain);

    core::DistributedSolver solver(comm, models::cifar10_quick_netspec(shard), solver_config,
                                   scaffe_config);

    for (int iteration = 0; iteration < iterations; ++iteration) {
      const data::Batch batch = reader.next();
      const core::IterationResult result = solver.train_iteration(batch.data, batch.labels);
      if (comm.rank() == 0 && (iteration % 5 == 0 || iteration == iterations - 1)) {
        std::lock_guard<std::mutex> lock(print_mutex);
        std::printf("  iter %3d  loss %.4f\n", iteration, result.local_loss);
      }
    }

    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("trained %ld iterations; database served %llu reads through %s\n",
                  solver.solver().iteration(),
                  static_cast<unsigned long long>(backend.reads()), backend.name());
    }
  });
  return 0;
}
