// scaffe_cli: the end-user driver, mirroring the paper's public S-Caffe
// command line (they document a `-scal weak` option; we add the rest).
//
// Usage:
//   scaffe_cli [--np N] [--iterations N] [--batch N] [--scal strong|weak]
//              [--variant scb|scob|scobr] [--agg tree|allreduce[,ring]]
//              [--chain K] [--model cifar10|mlp|lenet|mini_alexnet]
//              [--net FILE.netspec] [--solver FILE.solverspec]
//              [--snapshot PATH] [--snapshot-every N] [--shuffle]
//
// Examples:
//   scaffe_cli --np 4 --iterations 20 --batch 32
//   scaffe_cli --np 2 --scal weak --batch 8 --variant scb
//   scaffe_cli --np 4 --agg allreduce,ring --model mlp
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

#include "core/trainer.h"
#include "data/dataset.h"
#include "dl/netspec_text.h"
#include "dl/solver_text.h"
#include "models/zoo.h"
#include "mpi/comm.h"

using namespace scaffe;

namespace {

struct CliOptions {
  int np = 4;
  int iterations = 20;
  int batch = 32;
  core::Scaling scaling = core::Scaling::Strong;
  core::Variant variant = core::Variant::SCOBR;
  core::Aggregation aggregation = core::Aggregation::RootUpdate;
  bool ring = false;
  int chain = 2;
  std::string model = "cifar10";
  std::string net_file;
  std::string solver_file;
  std::string snapshot;
  int snapshot_every = 0;
  bool shuffle = false;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "scaffe_cli: %s (see the header comment for usage)\n", what.c_str());
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions options;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--np") options.np = std::stoi(next(i));
    else if (arg == "--iterations") options.iterations = std::stoi(next(i));
    else if (arg == "--batch") options.batch = std::stoi(next(i));
    else if (arg == "--chain") options.chain = std::stoi(next(i));
    else if (arg == "--model") options.model = next(i);
    else if (arg == "--net") options.net_file = next(i);
    else if (arg == "--solver") options.solver_file = next(i);
    else if (arg == "--snapshot") options.snapshot = next(i);
    else if (arg == "--snapshot-every") options.snapshot_every = std::stoi(next(i));
    else if (arg == "--shuffle") options.shuffle = true;
    else if (arg == "--scal") {
      const std::string v = next(i);
      if (v == "strong") options.scaling = core::Scaling::Strong;
      else if (v == "weak") options.scaling = core::Scaling::Weak;
      else usage_error("--scal must be strong or weak");
    } else if (arg == "--variant") {
      const std::string v = next(i);
      if (v == "scb") options.variant = core::Variant::SCB;
      else if (v == "scob") options.variant = core::Variant::SCOB;
      else if (v == "scobr") options.variant = core::Variant::SCOBR;
      else usage_error("--variant must be scb, scob or scobr");
    } else if (arg == "--agg") {
      const std::string v = next(i);
      if (v == "tree") options.aggregation = core::Aggregation::RootUpdate;
      else if (v == "allreduce" || v == "allreduce,ring") {
        options.aggregation = core::Aggregation::AllreduceSgd;
        options.ring = v == "allreduce,ring";
      } else usage_error("--agg must be tree or allreduce[,ring]");
    } else {
      usage_error("unknown option " + arg);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = parse_args(argc, argv);

  // Dataset + net spec selection. --net overrides --model; the dataset must
  // match the net's data blob, so file-based nets use the MLP-style
  // flat-feature dataset sized from the spec.
  data::SyntheticImageDataset dataset = data::SyntheticImageDataset::cifar10();
  core::NetSpecFactory factory;
  if (!options.net_file.empty()) {
    const dl::NetSpec file_spec = dl::parse_netspec(read_file(options.net_file));
    if (file_spec.inputs.empty()) usage_error("net file declares no inputs");
    std::size_t floats = 1;
    for (std::size_t d = 1; d < file_spec.inputs[0].shape.size(); ++d) {
      floats *= static_cast<std::size_t>(file_spec.inputs[0].shape[d]);
    }
    dataset = data::SyntheticImageDataset(
        4096, 1, 1, static_cast<int>(floats), 10);
    factory = [spec = file_spec](int batch) {
      dl::NetSpec sized = spec;
      for (auto& input : sized.inputs) input.shape[0] = batch;
      return sized;
    };
  } else if (options.model == "cifar10") {
    factory = [](int batch) { return models::cifar10_quick_netspec(batch); };
  } else if (options.model == "mlp") {
    dataset = data::SyntheticImageDataset(4096, 1, 1, 16, 4);
    factory = [](int batch) { return models::mlp_netspec(batch, 16, 32, 4); };
  } else if (options.model == "lenet") {
    dataset = data::SyntheticImageDataset(4096, 1, 28, 28, 10);
    factory = [](int batch) { return models::lenet_netspec(batch); };
  } else if (options.model == "mini_alexnet") {
    dataset = data::SyntheticImageDataset(4096, 3, 16, 16, 10);
    factory = [](int batch) { return models::mini_alexnet_netspec(batch); };
  } else {
    usage_error("unknown --model " + options.model);
  }

  core::TrainerConfig config;
  config.iterations = options.iterations;
  config.global_batch = options.batch;
  config.scaling = options.scaling;
  config.scaffe.variant = options.variant;
  config.scaffe.aggregation = options.aggregation;
  config.scaffe.ring_allreduce = options.ring;
  config.scaffe.reduce = core::ReduceAlgo::cb(options.chain);
  config.snapshot_every = options.snapshot_every;
  config.snapshot_path = options.snapshot;
  if (options.shuffle) config.shuffle_epoch_size = dataset.size();
  if (!options.solver_file.empty()) {
    config.solver = dl::parse_solver_config(read_file(options.solver_file));
  } else {
    config.solver.base_lr = 0.01f;
    config.solver.momentum = 0.9f;
  }

  std::printf("scaffe: np=%d iterations=%d batch=%d (%s scaling) variant=%s agg=%s%s "
              "HR=CB-%d model=%s%s\n",
              options.np, options.iterations, options.batch,
              options.scaling == core::Scaling::Strong ? "strong" : "weak",
              core::variant_name(options.variant),
              options.aggregation == core::Aggregation::RootUpdate ? "tree" : "allreduce",
              options.ring ? ",ring" : "", options.chain,
              options.net_file.empty() ? options.model.c_str() : options.net_file.c_str(),
              options.shuffle ? " shuffle=on" : "");

  data::ImageDataBackend backend(dataset);
  std::mutex print_mutex;
  mpi::Runtime runtime(options.np);
  runtime.run([&](mpi::Comm& comm) {
    core::Trainer trainer(comm, backend, dataset.sample_floats(), factory, config);
    const core::TrainerReport report = trainer.run();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("loss: %.4f -> %.4f over %ld iterations (%llu samples)\n",
                  report.root_losses.front(), report.root_losses.back(), report.iterations,
                  static_cast<unsigned long long>(report.samples_trained));
      if (report.snapshots_written > 0) {
        std::printf("wrote %d snapshot(s) to %s\n", report.snapshots_written,
                    config.snapshot_path.c_str());
      }
    }
  });
  return 0;
}
