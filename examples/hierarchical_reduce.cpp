// The DL-aware hierarchical reduction as a standalone communication toolkit:
// generate schedules (binomial / chunked chain / CB-k / CC-k), validate
// them, execute one for real on thread-backed "GPUs", tune the HR table for
// Cluster-A, and price the winner at 160 GPUs.
//
// Run:  ./hierarchical_reduce
#include <cstdio>
#include <limits>
#include <vector>

#include "coll/algorithms.h"
#include "coll/logical_executor.h"
#include "coll/sim_executor.h"
#include "coll/thread_executor.h"
#include "coll/tuner.h"
#include "net/cluster.h"
#include "util/bytes.h"

using namespace scaffe;
using namespace scaffe::coll;

int main() {
  std::printf("== schedule generation and validation ==\n");
  const int nranks = 16;
  const std::size_t count = 1 << 14;  // 64 KiB of floats
  const Schedule schedule =
      hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain, LevelAlgo::Binomial, 8);
  std::printf("%s: %d ranks, %zu ops, %s sent\n", schedule.name.c_str(), schedule.nranks,
              schedule.total_ops(), util::fmt_bytes(schedule.total_bytes_sent()).c_str());
  const std::string semantics = check_semantics(schedule);
  std::printf("validator: %s\n", semantics.empty() ? "OK (sum reaches the root)"
                                                   : semantics.c_str());

  std::printf("\n== real execution: 16 rank threads reduce 64K floats ==\n");
  std::vector<std::vector<float>> data(nranks, std::vector<float>(count, 1.0f));
  std::vector<std::span<float>> spans;
  for (auto& v : data) spans.emplace_back(v);
  run_threaded(schedule, spans);
  std::printf("root[0] = %.1f (expected %d)\n", data[0][0], nranks);

  std::printf("\n== HR tuning for Cluster-A at 160 GPUs ==\n");
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const TuningTable table = hr_tune(cluster, 160, ExecPolicy::hr_gdr());
  for (const auto& entry : table.entries()) {
    std::printf("  messages <= %-8s -> %s\n",
                entry.max_bytes == std::numeric_limits<std::size_t>::max()
                    ? "inf"
                    : util::fmt_bytes(entry.max_bytes).c_str(),
                entry.choice.name.c_str());
  }

  std::printf("\n== pricing a 256MB AlexNet-class aggregation at 160 GPUs ==\n");
  const std::size_t big = 64 * util::kMiB;  // floats -> 256 MiB payload
  for (const char* label : {"binomial", "HR (tuned)"}) {
    const Schedule s = std::string(label) == "binomial"
                           ? binomial_reduce(160, 0, big)
                           : hr_tuned_reduce(table, 160, big);
    const auto result = simulate_schedule(s, cluster, ExecPolicy::hr_gdr());
    std::printf("  %-12s %8.1f ms  (%llu DES events)\n", label,
                util::to_ms(result.root_finish),
                static_cast<unsigned long long>(result.events));
  }
  return 0;
}
