// ASCII per-rank timelines of reduction algorithms on the modelled cluster:
// *why* the chunked chain pipelines and the binomial tree serializes,
// visible at a glance. Uses the DES executor's trace capture.
//
// Usage: ./reduce_timeline [ranks=8] [megabytes=16]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/sim_executor.h"
#include "net/cluster.h"
#include "util/bytes.h"
#include "util/duration.h"

using namespace scaffe;
using namespace scaffe::coll;

namespace {

void print_gantt(const char* title, const SimResult& result, int nranks) {
  constexpr int kWidth = 96;
  const double scale = static_cast<double>(kWidth) / static_cast<double>(result.total);

  std::printf("\n%s  (total %s)\n", title, util::fmt_time(result.total).c_str());
  for (int rank = 0; rank < nranks; ++rank) {
    std::string lane(kWidth, '.');
    for (const TraceEvent& event : result.trace) {
      if (event.rank != rank) continue;
      const int from = std::clamp(static_cast<int>(event.start * scale), 0, kWidth - 1);
      const int to = std::clamp(static_cast<int>(event.end * scale), from, kWidth - 1);
      const char glyph = event.kind == OpKind::Send ? 'S'
                         : event.kind == OpKind::RecvReduce ? 'R'
                                                            : 'r';
      for (int i = from; i <= to; ++i) {
        // Busy send time wins over wait time in the rendering.
        if (lane[static_cast<std::size_t>(i)] == '.' || glyph == 'S') {
          lane[static_cast<std::size_t>(i)] = glyph;
        }
      }
    }
    std::printf("rank %2d |%s|\n", rank, lane.c_str());
  }
  std::printf("         S = sending (link busy)   R = waiting+reducing   . = idle\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t mib = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const std::size_t count = mib * util::kMiB / sizeof(float);
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const ExecPolicy policy = ExecPolicy::hr_gdr();

  std::printf("reducing %s across %d GPUs on %s\n", util::fmt_bytes(mib * util::kMiB).c_str(),
              nranks, cluster.name.c_str());

  const auto binomial =
      simulate_schedule(binomial_reduce(nranks, 0, count), cluster, policy, true);
  print_gantt("binomial tree: log(P) rounds, each moving the WHOLE buffer", binomial, nranks);

  const auto chain =
      simulate_schedule(chain_reduce(nranks, 0, count, 16), cluster, policy, true);
  print_gantt("chunked chain: chunks stream leftward, every link busy at once", chain, nranks);

  const auto hier = simulate_schedule(
      hierarchical_reduce(nranks, count, std::max(nranks / 2, 2), LevelAlgo::Chain,
                          LevelAlgo::Binomial, 16),
      cluster, policy, true);
  print_gantt("hierarchical CB: chains fill the node, leaders run the tree", hier, nranks);
  return 0;
}
