// Time-to-resume after a rank failure: RecoveryPolicy::Restart (same-size
// relaunch) vs RecoveryPolicy::Shrink (survivor-world continue) vs
// RecoveryPolicy::Rejoin (shrink, then heal to full size at the next
// checkpoint boundary) at 4/8/16 ranks, against the fault-free baseline —
// plus the health plane's detection-latency rows: time-to-suspect via
// heartbeats (default SCAFFE_HEARTBEAT_MS knobs) vs the recv-timeout
// deadline for the same silent death. Real wall clock on this machine's
// in-process scmpi world; writes machine-readable BENCH_recovery.json so the
// recovery-latency trajectory is tracked PR over PR.
//
// Weak scaling keeps every world size (and every shrunk survivor count)
// viable without batch-divisibility concerns.
//
// SCAFFE_BENCH_SMOKE=1 runs the 4-rank row only (CI smoke).
// SCAFFE_RECOVERY_ASSERT=1 gates the run: heartbeat detection must beat the
// recv-timeout arm by >= 5x, and every Rejoin row must heal back to the full
// world.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "mpi/comm.h"
#include "mpi/health.h"
#include "util/fault.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  int ranks = 0;
  double clean_ms = 0;    // fault-free run
  double restart_ms = 0;  // crash at mid-run, same-size restart
  double shrink_ms = 0;   // crash at mid-run, survivors continue
  double rejoin_ms = 0;   // crash at mid-run, shrink then heal to full size
  int shrink_final_world = 0;
  int rejoin_final_world = 0;
  int rejoins = 0;
  int steps_lost = 0;  // iterations replayed: crash iteration - checkpoint
  double detect_heartbeat_ms = 0;  // time-to-suspect, default heartbeat knobs
  double detect_timeout_ms = 0;    // time-to-TimeoutError at the recv deadline
};

constexpr int kCrashIteration = 5;
constexpr int kSnapshotEvery = 2;
// The recv deadline a job would run with when heartbeats are off: generous
// enough to never false-positive on a slow collective.
constexpr long kDetectionDeadlineMs = 2000;

core::TrainerConfig make_config(const std::string& snapshot_path) {
  core::TrainerConfig config;
  config.iterations = 8;
  config.global_batch = 8;  // per rank: weak scaling
  config.scaling = core::Scaling::Weak;
  config.snapshot_every = kSnapshotEvery;
  config.snapshot_path = snapshot_path;
  config.recv_timeout_ms = 30000;
  config.solver.base_lr = 0.05f;
  config.solver.momentum = 0.9f;
  return config;
}

double timed_run(int ranks, data::ImageDataBackend& backend,
                 const data::SyntheticImageDataset& dataset,
                 const core::TrainerConfig& config, core::TrainerReport* report) {
  const auto start = Clock::now();
  core::TrainerReport result = core::train_with_recovery(
      ranks, backend, dataset.sample_floats(),
      [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); }, config);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (report != nullptr) *report = std::move(result);
  return ms;
}

// Detection latency for the same silent death (rank 1 deserts), measured two
// ways: heartbeat suspicion at the default knobs vs a blocked receive
// waiting out the full deadline.
void measure_detection(int ranks, Row& row) {
  {
    mpi::Runtime runtime(ranks);
    const auto start = Clock::now();
    try {
      runtime.run([](mpi::Comm& comm) {
        if (comm.rank() == 1) return;  // silent death
        mpi::HealthMonitor monitor(comm);  // default 25ms x 4 misses
        for (int i = 0; i < 20000; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          monitor.poll();
        }
      });
    } catch (const mpi::SuspectError&) {
    } catch (const mpi::AbortError&) {
    }
    row.detect_heartbeat_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  }
  {
    mpi::Runtime runtime(ranks);
    runtime.set_recv_timeout(std::chrono::milliseconds(kDetectionDeadlineMs));
    const auto start = Clock::now();
    try {
      runtime.run([](mpi::Comm& comm) {
        if (comm.rank() == 1) return;  // silent death
        std::vector<float> buffer(1);
        comm.recv<float>(buffer, 1, 7);  // blocked on the dead rank
      });
    } catch (const mpi::TimeoutError&) {
    } catch (const mpi::AbortError&) {
    }
    row.detect_timeout_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  }
}

}  // namespace

int main() {
  // Rank threads already provide the parallelism here; keep the math pool
  // serial so 16-rank worlds don't oversubscribe the machine.
  util::ThreadPool::set_global_threads(1);
  const bool smoke = std::getenv("SCAFFE_BENCH_SMOKE") != nullptr;
  const bool assert_gate = std::getenv("SCAFFE_RECOVERY_ASSERT") != nullptr;

  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "scaffe_bench_recovery.bin").string();

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  std::vector<int> rank_counts{4, 8, 16};
  if (smoke) rank_counts = {4};

  std::vector<Row> rows;
  for (const int ranks : rank_counts) {
    Row row;
    row.ranks = ranks;
    // Both crash policies replay from the checkpoint before the crash.
    row.steps_lost = kCrashIteration - (kCrashIteration / kSnapshotEvery) * kSnapshotEvery;
    core::TrainerConfig config = make_config(snapshot_path);

    std::filesystem::remove(snapshot_path);
    row.clean_ms = timed_run(ranks, backend, dataset, config, nullptr);

    // Rank 1 dies at iteration 5; the last good checkpoint records 4, so
    // every policy replays iterations 4..7 on top of the recovery cost.
    {
      std::filesystem::remove(snapshot_path);
      util::ScopedFaultPlan scope(util::FaultPlan(13).crash_rank(1, kCrashIteration));
      config.recovery = core::RecoveryPolicy::Restart;
      row.restart_ms = timed_run(ranks, backend, dataset, config, nullptr);
    }
    {
      std::filesystem::remove(snapshot_path);
      util::ScopedFaultPlan scope(util::FaultPlan(13).crash_rank(1, kCrashIteration));
      config.recovery = core::RecoveryPolicy::Shrink;
      core::TrainerReport report;
      row.shrink_ms = timed_run(ranks, backend, dataset, config, &report);
      row.shrink_final_world = report.recovery.final_world_size;
    }
    {
      std::filesystem::remove(snapshot_path);
      util::ScopedFaultPlan scope(util::FaultPlan(13).crash_rank(1, kCrashIteration));
      config.recovery = core::RecoveryPolicy::Rejoin;
      core::TrainerReport report;
      row.rejoin_ms = timed_run(ranks, backend, dataset, config, &report);
      row.rejoin_final_world = report.recovery.final_world_size;
      row.rejoins = report.recovery.rejoins;
    }

    measure_detection(ranks, row);

    std::printf("ranks=%2d  clean %7.1f ms  restart %7.1f ms (+%5.1f)  "
                "shrink %7.1f ms (+%5.1f, finishes on %d)  "
                "rejoin %7.1f ms (+%5.1f, heals to %d)\n",
                ranks, row.clean_ms, row.restart_ms, row.restart_ms - row.clean_ms,
                row.shrink_ms, row.shrink_ms - row.clean_ms, row.shrink_final_world,
                row.rejoin_ms, row.rejoin_ms - row.clean_ms, row.rejoin_final_world);
    std::printf("          detect: heartbeat %7.1f ms vs recv-timeout %7.1f ms "
                "(%.1fx faster, %d step(s) lost to replay)\n",
                row.detect_heartbeat_ms, row.detect_timeout_ms,
                row.detect_timeout_ms / row.detect_heartbeat_ms, row.steps_lost);
    rows.push_back(row);
  }
  std::filesystem::remove(snapshot_path);

  const char* json_path = "BENCH_recovery.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"workload\": \"mlp 6-8-3, weak scaling, batch 8/rank, "
                    "8 iterations, crash at 5, checkpoint at 4\",\n");
  std::fprintf(out, "  \"detection\": \"rank deserts; heartbeat default knobs "
                    "(25ms x 4 misses) vs %ldms recv deadline\",\n",
               kDetectionDeadlineMs);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"clean_ms\": %.3f, \"restart_ms\": %.3f, "
                 "\"shrink_ms\": %.3f, \"rejoin_ms\": %.3f, "
                 "\"restart_overhead_ms\": %.3f, \"shrink_overhead_ms\": %.3f, "
                 "\"rejoin_overhead_ms\": %.3f, \"shrink_final_world\": %d, "
                 "\"rejoin_final_world\": %d, \"rejoins\": %d, \"steps_lost\": %d, "
                 "\"detect_heartbeat_ms\": %.3f, \"detect_timeout_ms\": %.3f, "
                 "\"detection_speedup\": %.2f}%s\n",
                 row.ranks, row.clean_ms, row.restart_ms, row.shrink_ms, row.rejoin_ms,
                 row.restart_ms - row.clean_ms, row.shrink_ms - row.clean_ms,
                 row.rejoin_ms - row.clean_ms, row.shrink_final_world,
                 row.rejoin_final_world, row.rejoins, row.steps_lost,
                 row.detect_heartbeat_ms, row.detect_timeout_ms,
                 row.detect_timeout_ms / row.detect_heartbeat_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);

  if (assert_gate) {
    for (const Row& row : rows) {
      if (row.rejoin_final_world != row.ranks || row.rejoins < 1) {
        std::fprintf(stderr,
                     "ASSERT FAILED: ranks=%d rejoin healed to %d (rejoins=%d), "
                     "expected the full world back\n",
                     row.ranks, row.rejoin_final_world, row.rejoins);
        return 1;
      }
      if (row.shrink_final_world != row.ranks - 1) {
        std::fprintf(stderr,
                     "ASSERT FAILED: ranks=%d shrink finished on %d, expected %d\n",
                     row.ranks, row.shrink_final_world, row.ranks - 1);
        return 1;
      }
      if (row.detect_timeout_ms < 5.0 * row.detect_heartbeat_ms) {
        std::fprintf(stderr,
                     "ASSERT FAILED: ranks=%d heartbeat detection %.1fms not >= 5x "
                     "faster than recv-timeout %.1fms\n",
                     row.ranks, row.detect_heartbeat_ms, row.detect_timeout_ms);
        return 1;
      }
    }
    std::printf("recovery asserts passed: rejoin heals to full world, heartbeat "
                "detection >= 5x faster than recv-timeout\n");
  }
  return 0;
}
