// Time-to-resume after a rank failure: RecoveryPolicy::Restart (same-size
// relaunch) vs RecoveryPolicy::Shrink (survivor-world continue) at 4/8/16
// ranks, against the fault-free baseline. Real wall clock on this machine's
// in-process scmpi world; writes machine-readable BENCH_recovery.json so the
// recovery-latency trajectory is tracked PR over PR.
//
// Weak scaling keeps every world size (and every shrunk survivor count)
// viable without batch-divisibility concerns.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "util/fault.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  int ranks = 0;
  double clean_ms = 0;    // fault-free run
  double restart_ms = 0;  // crash at mid-run, same-size restart
  double shrink_ms = 0;   // crash at mid-run, survivors continue
  int shrink_final_world = 0;
};

core::TrainerConfig make_config(const std::string& snapshot_path) {
  core::TrainerConfig config;
  config.iterations = 8;
  config.global_batch = 8;  // per rank: weak scaling
  config.scaling = core::Scaling::Weak;
  config.snapshot_every = 2;
  config.snapshot_path = snapshot_path;
  config.recv_timeout_ms = 30000;
  config.solver.base_lr = 0.05f;
  config.solver.momentum = 0.9f;
  return config;
}

double timed_run(int ranks, data::ImageDataBackend& backend,
                 const data::SyntheticImageDataset& dataset,
                 const core::TrainerConfig& config, core::TrainerReport* report) {
  const auto start = Clock::now();
  core::TrainerReport result = core::train_with_recovery(
      ranks, backend, dataset.sample_floats(),
      [](int batch) { return models::mlp_netspec(batch, 6, 8, 3); }, config);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (report != nullptr) *report = std::move(result);
  return ms;
}

}  // namespace

int main() {
  // Rank threads already provide the parallelism here; keep the math pool
  // serial so 16-rank worlds don't oversubscribe the machine.
  util::ThreadPool::set_global_threads(1);

  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "scaffe_bench_recovery.bin").string();

  data::SyntheticImageDataset dataset(256, 1, 1, 6, 3);
  data::ImageDataBackend backend(dataset);

  std::vector<Row> rows;
  for (const int ranks : {4, 8, 16}) {
    Row row;
    row.ranks = ranks;
    core::TrainerConfig config = make_config(snapshot_path);

    std::filesystem::remove(snapshot_path);
    row.clean_ms = timed_run(ranks, backend, dataset, config, nullptr);

    // Rank 1 dies at iteration 5; the last good checkpoint records 4, so
    // both policies replay iterations 4..7 on top of the recovery cost.
    {
      std::filesystem::remove(snapshot_path);
      util::ScopedFaultPlan scope(util::FaultPlan(13).crash_rank(1, 5));
      config.recovery = core::RecoveryPolicy::Restart;
      row.restart_ms = timed_run(ranks, backend, dataset, config, nullptr);
    }
    {
      std::filesystem::remove(snapshot_path);
      util::ScopedFaultPlan scope(util::FaultPlan(13).crash_rank(1, 5));
      config.recovery = core::RecoveryPolicy::Shrink;
      core::TrainerReport report;
      row.shrink_ms = timed_run(ranks, backend, dataset, config, &report);
      row.shrink_final_world = report.recovery.final_world_size;
    }

    std::printf("ranks=%2d  clean %7.1f ms  restart %7.1f ms (+%5.1f)  "
                "shrink %7.1f ms (+%5.1f, finishes on %d)\n",
                ranks, row.clean_ms, row.restart_ms, row.restart_ms - row.clean_ms,
                row.shrink_ms, row.shrink_ms - row.clean_ms, row.shrink_final_world);
    rows.push_back(row);
  }
  std::filesystem::remove(snapshot_path);

  const char* json_path = "BENCH_recovery.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"workload\": \"mlp 6-8-3, weak scaling, batch 8/rank, "
                    "8 iterations, crash at 5, checkpoint at 4\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"clean_ms\": %.3f, \"restart_ms\": %.3f, "
                 "\"shrink_ms\": %.3f, \"restart_overhead_ms\": %.3f, "
                 "\"shrink_overhead_ms\": %.3f, \"shrink_final_world\": %d}%s\n",
                 row.ranks, row.clean_ms, row.restart_ms, row.shrink_ms,
                 row.restart_ms - row.clean_ms, row.shrink_ms - row.clean_ms,
                 row.shrink_final_world, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
