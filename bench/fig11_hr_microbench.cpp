// Figure 11: MPI_Reduce latency at 160 processes (GPUs) on Cluster-A —
// MVAPICH2 (MV2), chain-binomial (CB-k), chain-chain (CC-k), and the tuned
// hierarchical design HR (Tuned), across message sizes (OSU-benchmark style).
#include <limits>
#include <vector>

#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "coll/sim_executor.h"
#include "coll/tuner.h"
#include "net/cluster.h"
#include "util/bytes.h"
#include "util/duration.h"

using namespace scaffe;
using namespace scaffe::coll;

int main() {
  bench::print_heading("Figure 11",
                       "MPI_Reduce latency for 160 processes (GPUs), Cluster-A (us)");

  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const int nranks = 160;
  const ExecPolicy hr_policy = ExecPolicy::hr_gdr();
  const ExecPolicy mv2_policy = ExecPolicy::mvapich2();

  const TuningTable table = hr_tune(cluster, nranks, hr_policy);
  std::printf("HR tuning table (winner per message-size range):\n");
  for (const auto& entry : table.entries()) {
    std::printf("  <= %s : %s\n",
                entry.max_bytes == std::numeric_limits<std::size_t>::max()
                    ? "inf"
                    : util::fmt_bytes(entry.max_bytes).c_str(),
                entry.choice.name.c_str());
  }

  util::Table out({"size", "MV2", "CB-4", "CB-8", "CC-4", "CC-8", "HR (Tuned)"});
  for (std::size_t bytes = 4; bytes <= 256 * util::kMiB; bytes *= 4) {
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);
    auto us = [&](const Schedule& schedule, const ExecPolicy& policy) {
      return util::fmt_double(
          util::to_us(simulate_schedule(schedule, cluster, policy).root_finish), 1);
    };
    out.add_row({util::fmt_bytes(bytes),
                 us(binomial_reduce(nranks, 0, count), mv2_policy),
                 us(hierarchical_reduce(nranks, count, 4, LevelAlgo::Chain,
                                        LevelAlgo::Binomial, 16),
                    hr_policy),
                 us(hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain,
                                        LevelAlgo::Binomial, 16),
                    hr_policy),
                 us(hierarchical_reduce(nranks, count, 4, LevelAlgo::Chain, LevelAlgo::Chain,
                                        16),
                    hr_policy),
                 us(hierarchical_reduce(nranks, count, 8, LevelAlgo::Chain, LevelAlgo::Chain,
                                        16),
                    hr_policy),
                 us(hr_tuned_reduce(table, nranks, count), hr_policy)});
  }
  bench::print_table(out);
  bench::print_note(
      "paper shape: HR (Tuned) tracks the best fixed combination everywhere; "
      "chain lower levels win for large messages, binomial for small");
  return 0;
}
