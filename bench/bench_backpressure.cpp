// Backpressure benchmark: fan-in incast against a deliberately slow consumer,
// with credit-based flow control (SCAFFE_MAILBOX_BYTES budget) vs the legacy
// unbounded mailbox (budget 0) as the A/B.
//
// Ranks 1..N-1 each blast K messages of M bytes at rank 0, which drains them
// any-source with a fixed stall per message — the classic parameter-server
// hotspot from the paper's fan-in reductions. The flow arm must keep per-link
// queued+reserved bytes within the budget (senders pace themselves via
// RTS/CTS credit admission); the legacy arm demonstrates why that matters by
// queueing far past it.
//
// Writes machine-readable BENCH_backpressure.json. SCAFFE_BENCH_SMOKE=1
// shrinks the footprint for CI. SCAFFE_BACKPRESSURE_ASSERT=1 exits nonzero
// unless the flow arm's peak occupancy stays <= the budget AND the legacy
// arm's peak exceeds it (i.e. removing flow control demonstrably breaks the
// bound) — the hard memory gate wired into scripts/check.sh. Payload stamps
// are always summed and checked; corruption fails the run in either mode.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mpi/comm.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

struct ArmResult {
  double seconds = 0;
  bool sum_ok = false;
  mpi::Mailbox::FlowStats stats;
};

/// One incast run: a fresh runtime per arm so FlowStats peaks are that arm's
/// alone. `budget == 0` is the legacy unbounded arm.
ArmResult run_incast(int ranks, std::size_t msg_bytes, int msgs_per_sender,
                     std::size_t budget, std::chrono::microseconds stall) {
  const int senders = ranks - 1;
  const int total = senders * msgs_per_sender;
  mpi::Runtime runtime(ranks);
  runtime.set_recv_timeout(std::chrono::milliseconds(120000));
  runtime.set_mailbox_bytes(budget);

  ArmResult result;
  std::uint64_t received_sum = 0;
  const auto start = Clock::now();
  runtime.run([&](mpi::Comm& comm) {
    constexpr int kTag = 17;
    if (comm.rank() == 0) {
      std::vector<std::byte> buffer(msg_bytes);
      std::uint64_t sum = 0;
      for (int m = 0; m < total; ++m) {
        comm.recv_any<std::byte>(buffer, kTag);
        sum += std::to_integer<std::uint64_t>(buffer.front()) +
               std::to_integer<std::uint64_t>(buffer.back());
        std::this_thread::sleep_for(stall);  // the slow consumer
      }
      received_sum = sum;
    } else {
      std::vector<std::byte> payload(msg_bytes);
      for (int m = 0; m < msgs_per_sender; ++m) {
        const auto stamp = static_cast<std::byte>((comm.rank() * 31 + m) & 0xff);
        payload.front() = stamp;
        payload.back() = stamp;
        comm.send<std::byte>(payload, 0, kTag);
      }
    }
  });
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::uint64_t expected = 0;
  for (int r = 1; r <= senders; ++r) {
    for (int m = 0; m < msgs_per_sender; ++m) {
      expected += 2 * static_cast<std::uint64_t>((r * 31 + m) & 0xff);
    }
  }
  result.sum_ok = received_sum == expected;
  result.stats = runtime.flow_stats();
  return result;
}

void print_arm(const char* name, const ArmResult& arm, std::size_t budget) {
  std::printf(
      "%-6s peak %10zu B (budget %zu)  %6.3f s  enqueued %llu  claimed %llu  "
      "rts %llu  credit_waits %llu (%llu us)\n",
      name, arm.stats.peak_occupancy_bytes, budget, arm.seconds,
      static_cast<unsigned long long>(arm.stats.enqueued_messages),
      static_cast<unsigned long long>(arm.stats.claimed_messages),
      static_cast<unsigned long long>(arm.stats.rts_handshakes),
      static_cast<unsigned long long>(arm.stats.credit_waits),
      static_cast<unsigned long long>(arm.stats.credit_wait_us));
}

void write_arm_json(std::FILE* out, const char* name, const ArmResult& arm,
                    bool trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\"seconds\": %.4f, \"peak_occupancy_bytes\": %zu, "
               "\"queued_bytes\": %zu, \"reserved_bytes\": %zu, "
               "\"enqueued_messages\": %llu, \"claimed_messages\": %llu, "
               "\"rts_handshakes\": %llu, \"credit_waits\": %llu, "
               "\"credit_wait_us\": %llu, \"backpressure_timeouts\": %llu, "
               "\"sum_ok\": %s}%s\n",
               name, arm.seconds, arm.stats.peak_occupancy_bytes,
               arm.stats.queued_bytes, arm.stats.reserved_bytes,
               static_cast<unsigned long long>(arm.stats.enqueued_messages),
               static_cast<unsigned long long>(arm.stats.claimed_messages),
               static_cast<unsigned long long>(arm.stats.rts_handshakes),
               static_cast<unsigned long long>(arm.stats.credit_waits),
               static_cast<unsigned long long>(arm.stats.credit_wait_us),
               static_cast<unsigned long long>(arm.stats.backpressure_timeouts),
               arm.sum_ok ? "true" : "false", trailing_comma ? "," : "");
}

}  // namespace

int main() {
  // Rank threads are the parallelism; keep the math pool serial so the bench
  // machine isn't oversubscribed.
  util::ThreadPool::set_global_threads(1);

  const bool smoke = env_flag("SCAFFE_BENCH_SMOKE");
  const bool assert_mode = env_flag("SCAFFE_BACKPRESSURE_ASSERT");

  const int ranks = smoke ? 4 : 8;
  const std::size_t msg_bytes = smoke ? (std::size_t{256} << 10) : (std::size_t{1} << 20);
  const int msgs_per_sender = smoke ? 8 : 32;
  const std::size_t budget = smoke ? (std::size_t{1} << 20) : (std::size_t{4} << 20);
  const auto stall = std::chrono::microseconds(smoke ? 100 : 200);
  const double traffic_mb = static_cast<double>(ranks - 1) * msgs_per_sender *
                            static_cast<double>(msg_bytes) / 1e6;

  std::printf(
      "backpressure bench (%s): %d senders -> rank 0, %zu B x %d msgs each "
      "(%.1f MB total), budget %zu B, consumer stall %lld us\n",
      smoke ? "smoke" : "full", ranks - 1, msg_bytes, msgs_per_sender, traffic_mb,
      budget, static_cast<long long>(stall.count()));

  const ArmResult flow = run_incast(ranks, msg_bytes, msgs_per_sender, budget, stall);
  print_arm("flow", flow, budget);
  const ArmResult legacy = run_incast(ranks, msg_bytes, msgs_per_sender, 0, stall);
  print_arm("legacy", legacy, 0);

  const bool flow_within_budget = flow.stats.peak_occupancy_bytes <= budget;
  const bool legacy_exceeds_budget = legacy.stats.peak_occupancy_bytes > budget;
  std::printf("flow within budget: %s  legacy exceeds budget: %s\n",
              flow_within_budget ? "yes" : "NO", legacy_exceeds_budget ? "yes" : "NO");

  bool failed = false;
  if (!flow.sum_ok || !legacy.sum_ok) {
    std::fprintf(stderr, "BACKPRESSURE: payload stamp sum mismatch (corruption)\n");
    failed = true;
  }
  if (assert_mode) {
    if (!flow_within_budget) {
      std::fprintf(stderr,
                   "BACKPRESSURE ASSERT FAILED: flow peak %zu B > budget %zu B\n",
                   flow.stats.peak_occupancy_bytes, budget);
      failed = true;
    }
    if (!legacy_exceeds_budget) {
      std::fprintf(stderr,
                   "BACKPRESSURE ASSERT FAILED: legacy peak %zu B never exceeded "
                   "budget %zu B (A/B shows no flow-control effect)\n",
                   legacy.stats.peak_occupancy_bytes, budget);
      failed = true;
    }
    if (flow.stats.credit_waits == 0) {
      std::fprintf(stderr,
                   "BACKPRESSURE ASSERT FAILED: flow arm never waited for credit "
                   "(incast did not stress the window)\n");
      failed = true;
    }
  }

  const char* json_path = "BENCH_backpressure.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"ranks\": %d,\n", ranks);
  std::fprintf(out, "  \"message_bytes\": %zu,\n", msg_bytes);
  std::fprintf(out, "  \"messages_per_sender\": %d,\n", msgs_per_sender);
  std::fprintf(out, "  \"budget_bytes\": %zu,\n", budget);
  std::fprintf(out, "  \"consumer_stall_us\": %lld,\n",
               static_cast<long long>(stall.count()));
  write_arm_json(out, "flow", flow, /*trailing_comma=*/true);
  write_arm_json(out, "legacy", legacy, /*trailing_comma=*/true);
  std::fprintf(out, "  \"flow_within_budget\": %s,\n", flow_within_budget ? "true" : "false");
  std::fprintf(out, "  \"legacy_exceeds_budget\": %s\n",
               legacy_exceeds_budget ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return failed ? 1 : 0;
}
