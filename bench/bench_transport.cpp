// Transport protocol benchmark: the co-designed zero-copy/pooled transport
// (Tuned) against the pre-pool transport (Legacy: fresh heap allocation plus
// full staging copy per message, no posted-receive claims).
//
//  1. Ping-pong sweep (2 ranks, 256 B .. 16 MiB): per-size effective one-way
//     bandwidth with the protocol pinned all-eager vs all-rendezvous — the
//     crossover between the two paths is visible in the output, motivating
//     the SCAFFE_EAGER_LIMIT default.
//  2. AlexNet-scale packed collectives (~229 MB of gradients, 4 ranks):
//     reduce / bcast / allreduce wall time and effective bandwidth, Tuned vs
//     Legacy. The acceptance bar is >= 2x effective bandwidth for Tuned.
//
// Writes machine-readable BENCH_transport.json so the transport trajectory is
// tracked PR over PR. SCAFFE_BENCH_SMOKE=1 shrinks sizes/iterations to a
// CI-smoke footprint (used by scripts/check.sh).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpi/comm.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* env = std::getenv("SCAFFE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- 1. ping-pong sweep ------------------------------------------------------

struct PingPongRow {
  std::size_t bytes = 0;
  double eager_gbps = 0;       // protocol pinned all-eager
  double rendezvous_gbps = 0;  // protocol pinned all-rendezvous
};

// One-way effective bandwidth of a 2-rank ping-pong at `bytes` per message.
double pingpong_gbps(mpi::Runtime& runtime, std::size_t bytes, int iters) {
  const std::size_t count = bytes / sizeof(float);
  double elapsed = 0;
  runtime.run([&](mpi::Comm& comm) {
    std::vector<float> ping(count, 1.0f);
    std::vector<float> pong(count);
    // Iteration -1 is warmup: primes the buffer pool and page tables.
    for (int i = -1; i < iters; ++i) {
      const auto start = Clock::now();
      if (comm.rank() == 0) {
        comm.send<float>(ping, 1, 1);
        comm.recv<float>(std::span<float>(pong), 1, 2);
      } else {
        comm.recv<float>(std::span<float>(pong), 0, 1);
        comm.send<float>(ping, 0, 2);
      }
      if (i >= 0 && comm.rank() == 0) elapsed += seconds_since(start);
    }
  });
  const double one_way = elapsed / (2.0 * iters);
  return one_way > 0 ? static_cast<double>(bytes) / one_way / 1e9 : 0;
}

std::vector<PingPongRow> run_pingpong_sweep(bool smoke) {
  const std::size_t max_bytes = smoke ? (std::size_t{256} << 10) : (std::size_t{16} << 20);
  std::vector<PingPongRow> rows;
  mpi::Runtime runtime(2);
  runtime.set_transport_mode(mpi::TransportMode::Tuned);
  for (std::size_t bytes = 256; bytes <= max_bytes; bytes <<= 2) {
    const int iters = smoke ? 4 : static_cast<int>(std::min<std::size_t>(
                                      64, std::max<std::size_t>(4, (8 << 20) / bytes)));
    PingPongRow row;
    row.bytes = bytes;
    runtime.set_eager_limit(max_bytes * 2);  // every message eager
    row.eager_gbps = pingpong_gbps(runtime, bytes, iters);
    runtime.set_eager_limit(0);  // every message rendezvous
    row.rendezvous_gbps = pingpong_gbps(runtime, bytes, iters);
    std::printf("pingpong %9zu B  eager %7.3f GB/s  rendezvous %7.3f GB/s\n",
                row.bytes, row.eager_gbps, row.rendezvous_gbps);
    rows.push_back(row);
  }
  return rows;
}

// --- 2. AlexNet-scale packed collectives -------------------------------------

struct PackedRow {
  std::string op;
  double legacy_ms = 0;
  double tuned_ms = 0;
  double legacy_gbps = 0;
  double tuned_gbps = 0;
  double speedup = 0;
};

// Wall time of one collective over `count` floats, median-free average of
// `iters` timed runs after one warmup. Rank 0's clock; a barrier brackets
// each run so the slowest rank is what's measured.
double timed_collective(mpi::Runtime& runtime, std::size_t count, int iters,
                        const std::string& op) {
  double elapsed = 0;
  runtime.run([&](mpi::Comm& comm) {
    std::vector<float> data(count);
    for (int i = -1; i < iters; ++i) {
      for (std::size_t j = 0; j < count; ++j) {
        data[j] = static_cast<float>(comm.rank() + 1) + 0.25f * static_cast<float>(j % 5);
      }
      comm.barrier();
      const auto start = Clock::now();
      if (op == "reduce") {
        comm.reduce(data, 0);
      } else if (op == "bcast") {
        comm.bcast(data, 0);
      } else {
        comm.allreduce(data);
      }
      comm.barrier();
      if (i >= 0 && comm.rank() == 0) elapsed += seconds_since(start);
    }
  });
  return elapsed * 1000.0 / iters;
}

std::vector<PackedRow> run_packed(int ranks, std::size_t count, int iters) {
  std::vector<PackedRow> rows;
  mpi::Runtime runtime(ranks);
  runtime.set_recv_timeout(std::chrono::milliseconds(120000));
  const double gbytes = static_cast<double>(count) * sizeof(float) / 1e9;
  for (const std::string op : {"reduce", "bcast", "allreduce"}) {
    PackedRow row;
    row.op = op;
    runtime.set_transport_mode(mpi::TransportMode::Legacy);
    row.legacy_ms = timed_collective(runtime, count, iters, op);
    runtime.set_transport_mode(mpi::TransportMode::Tuned);
    row.tuned_ms = timed_collective(runtime, count, iters, op);
    row.legacy_gbps = gbytes / (row.legacy_ms / 1000.0);
    row.tuned_gbps = gbytes / (row.tuned_ms / 1000.0);
    row.speedup = row.legacy_ms / row.tuned_ms;
    std::printf("packed %-9s %7.1f MB  legacy %8.1f ms (%6.2f GB/s)  "
                "tuned %8.1f ms (%6.2f GB/s)  speedup %.2fx\n",
                row.op.c_str(), gbytes * 1000.0, row.legacy_ms, row.legacy_gbps,
                row.tuned_ms, row.tuned_gbps, row.speedup);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main() {
  // Rank threads are the parallelism; keep the math pool serial so the
  // accumulate inside reduce doesn't oversubscribe the benchmark machine.
  util::ThreadPool::set_global_threads(1);

  const bool smoke = smoke_mode();
  // AlexNet's parameter set is ~61M floats (~244 MB); 60M keeps the figure
  // round while staying AlexNet-scale. Smoke mode shrinks to CI footprint.
  const int ranks = 4;
  const std::size_t count = smoke ? (std::size_t{1} << 16) : std::size_t{60} * 1000 * 1000;
  const int iters = smoke ? 2 : 3;

  std::printf("transport bench (%s): %d ranks, %.1f MB packed buffer\n",
              smoke ? "smoke" : "full", ranks,
              static_cast<double>(count) * sizeof(float) / 1e6);

  const std::vector<PingPongRow> pingpong = run_pingpong_sweep(smoke);
  const std::vector<PackedRow> packed = run_packed(ranks, count, iters);

  const char* json_path = "BENCH_transport.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"ranks\": %d,\n", ranks);
  std::fprintf(out, "  \"packed_bytes\": %zu,\n", count * sizeof(float));
  std::fprintf(out, "  \"pingpong\": [\n");
  for (std::size_t i = 0; i < pingpong.size(); ++i) {
    const PingPongRow& row = pingpong[i];
    std::fprintf(out,
                 "    {\"bytes\": %zu, \"eager_gbps\": %.4f, \"rendezvous_gbps\": %.4f}%s\n",
                 row.bytes, row.eager_gbps, row.rendezvous_gbps,
                 i + 1 < pingpong.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"packed\": [\n");
  for (std::size_t i = 0; i < packed.size(); ++i) {
    const PackedRow& row = packed[i];
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"legacy_ms\": %.3f, \"tuned_ms\": %.3f, "
                 "\"legacy_gbps\": %.4f, \"tuned_gbps\": %.4f, \"speedup\": %.3f}%s\n",
                 row.op.c_str(), row.legacy_ms, row.tuned_ms, row.legacy_gbps,
                 row.tuned_gbps, row.speedup, i + 1 < packed.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
