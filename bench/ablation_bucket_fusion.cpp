// Gradient bucket fusion ablation: per-layer SC-OBR overlap (the paper's
// design) against bucket-fused SC-OBR at several bucket targets, on a deep
// narrow MLP with a GoogLeNet-like gradient profile — many tens of layers of
// a few tens of KiB each, where per-collective setup dominates the wire time
// of each message.
//
// Modes: unfused, fused at {256 KiB, 1 MiB, 4 MiB}, and fused "auto" (bucket
// target derived from the measured eager/rendezvous crossover, which the
// bench measures first and applies to every run for fairness).
//
// Writes machine-readable BENCH_fusion.json. SCAFFE_BENCH_SMOKE=1 shrinks to
// a CI-smoke footprint; SCAFFE_FUSION_ASSERT=1 exits nonzero when fused-auto
// is slower than unfused beyond tolerance (used by scripts/check.sh).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/bucket_planner.h"
#include "core/distributed_solver.h"
#include "models/zoo.h"
#include "mpi/comm.h"
#include "mpi/transport_tuner.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

/// Deep narrow MLP: `depth` hidden InnerProduct+ReLU stages of width
/// `hidden` (each ~hidden^2 gradient floats) plus a classifier.
dl::NetSpec deep_mlp(int batch, int in_dim, int hidden, int depth, int classes) {
  dl::NetSpec spec;
  spec.name = "deep_mlp";
  spec.inputs = {{"data", {batch, in_dim}}, {"label", {batch}}};
  std::string bottom = "data";
  for (int d = 0; d < depth; ++d) {
    const std::string fc = "fc" + std::to_string(d);
    const std::string act = "act" + std::to_string(d);
    spec.layers.push_back(dl::LayerSpec::inner_product(fc, bottom, fc, hidden));
    spec.layers.push_back(dl::LayerSpec::relu(act, fc, act));
    bottom = act;
  }
  spec.layers.push_back(dl::LayerSpec::inner_product("cls", bottom, "cls", classes));
  spec.layers.push_back(dl::LayerSpec::softmax_loss("loss", "cls", "label", "loss"));
  return spec;
}

struct BenchShape {
  int in_dim = 0;
  int hidden = 0;
  int depth = 0;
  int classes = 10;
  int shard = 0;  // per-rank batch
  int iters = 0;
};

/// Mean wall time of one training iteration (rank 0's clock, barriers
/// bracketing so the slowest rank is measured), one warmup iteration.
double timed_training_ms(int ranks, std::size_t eager_limit, const core::ScaffeConfig& config,
                         const BenchShape& shape) {
  mpi::Runtime runtime(ranks);
  runtime.set_transport_mode(mpi::TransportMode::Tuned);
  runtime.set_recv_timeout(std::chrono::milliseconds(120000));
  runtime.set_eager_limit(eager_limit);

  double elapsed = 0;  // only rank 0 writes
  runtime.run([&](mpi::Comm& comm) {
    dl::SolverConfig solver_config;
    solver_config.base_lr = 0.01f;
    solver_config.seed = 7;
    core::DistributedSolver solver(
        comm,
        deep_mlp(shape.shard, shape.in_dim, shape.hidden, shape.depth, shape.classes),
        solver_config, config);

    std::vector<float> data(static_cast<std::size_t>(shape.shard * shape.in_dim));
    std::vector<float> labels(static_cast<std::size_t>(shape.shard));
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = 0.01f * static_cast<float>((i * 7 + static_cast<std::size_t>(comm.rank())) % 100);
    }
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<float>(i % static_cast<std::size_t>(shape.classes));
    }

    for (int i = -1; i < shape.iters; ++i) {
      comm.barrier();
      const auto start = Clock::now();
      solver.train_iteration(data, labels);
      comm.barrier();
      if (i >= 0 && comm.rank() == 0) {
        elapsed += std::chrono::duration<double>(Clock::now() - start).count();
      }
    }
  });
  return elapsed * 1000.0 / shape.iters;
}

struct ResultRow {
  int ranks = 0;
  std::string mode;
  std::size_t bucket_bytes = 0;  // 0 for unfused
  double iter_ms = 0;
  double speedup = 1.0;  // vs unfused at the same rank count
};

}  // namespace

int main() {
  // Rank threads are the parallelism; keep the math pool serial so layer
  // compute doesn't oversubscribe the benchmark machine.
  util::ThreadPool::set_global_threads(1);

  const bool smoke = env_flag("SCAFFE_BENCH_SMOKE");
  const bool assert_mode = env_flag("SCAFFE_FUSION_ASSERT");

  // Measure the eager/rendezvous crossover once and pin every run to it, so
  // "auto" reflects a genuinely measured protocol switch and all modes see
  // the same transport.
  const mpi::TransportCalibration calibration =
      mpi::measure_transport_calibration(smoke ? 6 : 24);
  const std::size_t crossover = calibration.pick_crossover();
  std::printf("measured eager/rendezvous crossover: %zu bytes\n", crossover);

  // Full shape targets ~6 MB of total gradients: several auto-sized buckets
  // (auto lands at 8x the crossover, up to 2 MiB), so the priority pipeline
  // keeps overlapping instead of degenerating into one blocking bucket.
  BenchShape shape;
  shape.in_dim = smoke ? 32 : 128;
  shape.hidden = smoke ? 32 : 128;  // ~64 KiB of gradients per fc layer (full)
  shape.depth = smoke ? 12 : 96;    // GoogLeNet-like many-small-layer profile
  shape.shard = smoke ? 4 : 8;
  shape.iters = smoke ? 3 : 6;

  const std::vector<int> rank_counts = smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};
  const std::size_t auto_bucket = core::resolve_bucket_bytes(0, crossover);

  struct Mode {
    std::string name;
    bool fused = false;
    std::size_t bucket_bytes = 0;
  };
  const std::vector<Mode> modes = {
      {"unfused", false, 0},
      {"fused-256K", true, std::size_t{256} << 10},
      {"fused-1M", true, std::size_t{1} << 20},
      {"fused-4M", true, std::size_t{4} << 20},
      {"fused-auto", true, 0},  // resolves from the eager limit (= crossover)
  };

  std::vector<ResultRow> rows;
  bool assert_failed = false;
  for (int ranks : rank_counts) {
    double unfused_ms = 0;
    double auto_ms = 0;
    for (const Mode& mode : modes) {
      core::ScaffeConfig config;
      config.variant = core::Variant::SCOBR;
      config.reduce = core::ReduceAlgo::binomial();
      config.fusion.enabled = mode.fused;
      config.fusion.bucket_bytes = mode.bucket_bytes;

      ResultRow row;
      row.ranks = ranks;
      row.mode = mode.name;
      row.bucket_bytes =
          mode.fused ? (mode.bucket_bytes > 0 ? mode.bucket_bytes : auto_bucket) : 0;
      row.iter_ms = timed_training_ms(ranks, crossover, config, shape);
      if (mode.name == "unfused") unfused_ms = row.iter_ms;
      if (mode.name == "fused-auto") auto_ms = row.iter_ms;
      row.speedup = unfused_ms > 0 ? unfused_ms / row.iter_ms : 1.0;
      std::printf("%2d ranks  %-11s bucket %8zu B  %8.2f ms/iter  speedup %.2fx\n",
                  row.ranks, row.mode.c_str(), row.bucket_bytes, row.iter_ms, row.speedup);
      rows.push_back(row);
    }
    if (assert_mode && auto_ms > unfused_ms * 1.25) {
      std::fprintf(stderr,
                   "FUSION ASSERT FAILED at %d ranks: fused-auto %.2f ms > "
                   "unfused %.2f ms x 1.25\n",
                   ranks, auto_ms, unfused_ms);
      assert_failed = true;
    }
  }

  const char* json_path = "BENCH_fusion.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"eager_crossover_bytes\": %zu,\n", crossover);
  std::fprintf(out, "  \"auto_bucket_bytes\": %zu,\n", auto_bucket);
  std::fprintf(out, "  \"net\": {\"depth\": %d, \"hidden\": %d, \"shard\": %d},\n",
               shape.depth, shape.hidden, shape.shard);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"mode\": \"%s\", \"bucket_bytes\": %zu, "
                 "\"iter_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 row.ranks, row.mode.c_str(), row.bucket_bytes, row.iter_ms, row.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return assert_failed ? 1 : 0;
}
