// Figure 13: SC-B vs SC-OB — overlapping data propagation with the Forward
// pass. The paper shows SC-OB hiding the broadcast latency behind the
// compute-intensive early layers, for ~15% end-to-end improvement. Includes
// the Figure 4 "naive NBC" placement ablation (wait too early).
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/duration.h"

using namespace scaffe;
using core::TrainPerfConfig;
using core::Variant;

namespace {

TrainPerfConfig config_for(int gpus, Variant variant, bool naive = false) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::googlenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = 1024;
  config.variant = variant;
  config.reduce = core::ReduceAlgo::cb(16);
  config.naive_nbc = naive;
  return config;
}

}  // namespace

int main() {
  bench::print_heading("Figure 13",
                       "SC-B vs SC-OB: propagation + F/B time per iteration (ms), GoogLeNet");

  util::Table out({"GPUs", "SC-B prop", "SC-B F/B", "SC-B total", "SC-OB prop(exposed)",
                   "SC-OB F/B", "SC-OB total", "improvement"});
  for (int gpus : {16, 32, 64, 128, 160}) {
    const auto scb = core::simulate_training_iteration(config_for(gpus, Variant::SCB));
    const auto scob = core::simulate_training_iteration(config_for(gpus, Variant::SCOB));
    const auto fb_b = scb.forward + scb.backward;
    const auto fb_ob = scob.forward + scob.backward;
    const util::TimeNs total_b = scb.propagation_exposed + fb_b;
    const util::TimeNs total_ob = scob.propagation_exposed + fb_ob;
    out.add_row({std::to_string(gpus), util::fmt_double(util::to_ms(scb.propagation_exposed), 2),
                 util::fmt_double(util::to_ms(fb_b), 2), util::fmt_double(util::to_ms(total_b), 2),
                 util::fmt_double(util::to_ms(scob.propagation_exposed), 2),
                 util::fmt_double(util::to_ms(fb_ob), 2),
                 util::fmt_double(util::to_ms(total_ob), 2),
                 util::fmt_double((1.0 - util::to_ms(total_ob) / util::to_ms(total_b)) * 100.0,
                                  1) +
                     "%"});
  }
  bench::print_table(out);
  bench::print_note("paper: up to 15% improvement for the SC-OB design; reduce phase "
                    "excluded (unaffected by SC-OB)");

  // Figure 4 vs Figure 5: naive one-layer-lookahead NBC vs multi-stage.
  bench::print_heading("Figure 4 vs Figure 5 (ablation)",
                       "naive NBC placement vs multi-stage on-demand waits");
  util::Table naive_table({"GPUs", "naive exposed prop (ms)", "multi-stage exposed prop (ms)"});
  for (int gpus : {32, 64, 160}) {
    const auto naive =
        core::simulate_training_iteration(config_for(gpus, Variant::SCOB, /*naive=*/true));
    const auto staged = core::simulate_training_iteration(config_for(gpus, Variant::SCOB));
    naive_table.add_row({std::to_string(gpus),
                         util::fmt_double(util::to_ms(naive.propagation_exposed), 2),
                         util::fmt_double(util::to_ms(staged.propagation_exposed), 2)});
  }
  bench::print_table(naive_table);
  return 0;
}
