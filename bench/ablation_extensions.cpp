// Ablations for the design extensions beyond the paper's evaluated space:
//
//  (a) k-nomial radix sweep — how tree radix trades rounds against root
//      fan-in at small and large messages;
//  (b) the paper's named future work: three-level chain-of-chain + binomial
//      vs the evaluated two-level combos at 160 GPUs;
//  (c) Rabenseifner reduce-scatter+gather vs tree/chain designs.
#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "coll/extensions.h"
#include "coll/sim_executor.h"
#include "net/cluster.h"
#include "util/bytes.h"

using namespace scaffe;
using namespace scaffe::coll;

namespace {

double us(const Schedule& schedule, const net::ClusterSpec& cluster) {
  return util::to_us(simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr()).root_finish);
}

}  // namespace

int main() {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();

  bench::print_heading("Extension ablation (a)", "k-nomial radix sweep, 128 ranks (us)");
  util::Table radix({"size", "radix 2 (binomial)", "radix 4", "radix 8"});
  for (std::size_t bytes : {std::size_t{64}, 64 * util::kKiB, 16 * util::kMiB}) {
    const std::size_t count = std::max<std::size_t>(bytes / 4, 1);
    radix.add_row({util::fmt_bytes(bytes),
                   util::fmt_double(us(knomial_reduce(128, 0, count, 2), cluster), 1),
                   util::fmt_double(us(knomial_reduce(128, 0, count, 4), cluster), 1),
                   util::fmt_double(us(knomial_reduce(128, 0, count, 8), cluster), 1)});
  }
  bench::print_table(radix);

  bench::print_heading("Extension ablation (b)",
                       "Section 5 future work: three-level CC+B vs two-level, 160 ranks (us)");
  util::Table levels({"size", "two-level CB-16", "two-level CC-16", "three-level CCB-16x5"});
  for (std::size_t bytes : {4 * util::kMiB, 64 * util::kMiB, 256 * util::kMiB}) {
    const std::size_t count = bytes / 4;
    levels.add_row(
        {util::fmt_bytes(bytes),
         util::fmt_double(us(hierarchical_reduce(160, count, 16, LevelAlgo::Chain,
                                                 LevelAlgo::Binomial, 16),
                             cluster),
                          1),
         util::fmt_double(us(hierarchical_reduce(160, count, 16, LevelAlgo::Chain,
                                                 LevelAlgo::Chain, 16),
                             cluster),
                          1),
         util::fmt_double(us(three_level_reduce(160, count, 16, 5, 16), cluster), 1)});
  }
  bench::print_table(levels);
  bench::print_note("the paper: \"in future, we can exploit multi-level combinations like "
                    "chain-of-chain combined with a top level binomial for very large scale "
                    "reductions\"");

  bench::print_heading("Extension ablation (c)",
                       "Rabenseifner reduce vs tree and chain, 64 ranks (us)");
  util::Table raben({"size", "binomial", "chunked chain", "CB-16", "Rabenseifner"});
  for (std::size_t bytes : {256 * util::kKiB, 4 * util::kMiB, 64 * util::kMiB}) {
    const std::size_t count = bytes / 4;
    raben.add_row(
        {util::fmt_bytes(bytes),
         util::fmt_double(us(binomial_reduce(64, 0, count), cluster), 1),
         util::fmt_double(us(chain_reduce(64, 0, count, 32), cluster), 1),
         util::fmt_double(us(hierarchical_reduce(64, count, 16, LevelAlgo::Chain,
                                                 LevelAlgo::Binomial, 16),
                             cluster),
                          1),
         util::fmt_double(us(rabenseifner_reduce(64, count), cluster), 1)});
  }
  bench::print_table(raben);
  bench::print_note("on a dense 16-GPU node, Rabenseifner's all-ranks-send-at-once steps "
                    "serialize on each node's single HCA, losing to designs that keep bulk "
                    "traffic on PCIe and send one flow per node — the core argument for the "
                    "paper's hierarchical communicators");
  return 0;
}
