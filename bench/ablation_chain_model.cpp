// Section 5 analytic-model ablation.
//
// The paper's model:  T(Bin) = log(P) * t(b)
//                     T(CC)  = (n + P - 2) * t(c),  c = b/n
// predicts: small P + large b  => chain wins;  large P + small b => binomial
// wins; chain benefit saturates past P ~ 8 (the chain-size sweet spot).
// This bench checks the simulated executor against those predictions and
// sweeps the chunk count n.
#include <cmath>

#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "coll/sim_executor.h"
#include "net/cluster.h"
#include "util/bytes.h"

using namespace scaffe;
using namespace scaffe::coll;

namespace {

double reduce_us(const Schedule& schedule, const net::ClusterSpec& cluster) {
  return util::to_us(
      simulate_schedule(schedule, cluster, ExecPolicy::hr_gdr()).root_finish);
}

}  // namespace

int main() {
  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();

  bench::print_heading("Section 5 ablation (a)",
                       "Bin vs chunked chain across P and message size (us)");
  util::Table grid({"P", "size", "T(Bin)", "T(CC) n=32", "winner", "model prediction"});
  for (int p : {4, 8, 16, 32, 64}) {
    for (std::size_t bytes : {std::size_t{1} * util::kKiB, 256 * util::kKiB,
                              8 * util::kMiB, 64 * util::kMiB}) {
      const std::size_t count = bytes / sizeof(float);
      const double bin = reduce_us(binomial_reduce(p, 0, count), cluster);
      const double chain = reduce_us(chain_reduce(p, 0, count, 32), cluster);
      const char* winner = chain < bin ? "CC" : "Bin";
      // Paper: ">8MB chain wins regardless of chunks; benefit fades past P=8".
      const char* predicted = (bytes >= 8 * util::kMiB && p <= 16) ? "CC"
                              : (bytes <= 4 * util::kKiB)          ? "Bin"
                                                                   : "?";
      grid.add_row({std::to_string(p), util::fmt_bytes(bytes), util::fmt_double(bin, 1),
                    util::fmt_double(chain, 1), winner, predicted});
    }
  }
  bench::print_table(grid);

  bench::print_heading("Section 5 ablation (b)",
                       "chunk-count sweep at P=8, 32MB: T(CC)=(n+P-2)*t(c)");
  util::Table chunks({"n (chunks)", "T(CC) simulated (us)", "T(CC) model (us)"});
  const int p = 8;
  const std::size_t count = 32 * util::kMiB / sizeof(float);
  // t(c) from the link model: chunk serialization at the chain's bandwidth.
  const net::CostModel cost(cluster);
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    const double simulated = reduce_us(chain_reduce(p, 0, count, n), cluster);
    const std::size_t chunk_bytes = count * sizeof(float) / static_cast<std::size_t>(n);
    const double tc =
        util::to_us(cost.msg_time(chunk_bytes, net::Path::IntraNode, net::Staging::Gdr) +
                    cost.reduce(chunk_bytes, net::ExecSpace::Gpu));
    chunks.add_row({std::to_string(n), util::fmt_double(simulated, 1),
                    util::fmt_double((n + p - 2) * tc, 1)});
  }
  bench::print_table(chunks);
  bench::print_note("simulated times should track (n+P-2)*t(c) within resource-contention "
                    "effects; both fall steeply with n then flatten");

  bench::print_heading("Section 5 ablation (c)", "chain-size sweep: the P~8 sweet spot");
  util::Table sweet({"chain ranks", "T(CC) per-rank efficiency (us/rank)"});
  for (int ranks : {2, 4, 8, 16, 32}) {
    const double t = reduce_us(chain_reduce(ranks, 0, count, 32), cluster);
    sweet.add_row({std::to_string(ranks), util::fmt_double(t / ranks, 2)});
  }
  bench::print_table(sweet);
  return 0;
}
