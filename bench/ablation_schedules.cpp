// Schedule-family crossover sweep: where do the paper's hierarchical CB-k /
// CC-k reductions stop winning, and where do the bandwidth-optimal schedules
// (double binary tree, topology-aware segmented ring) take over?
//
// Every algorithm is charged for a full allreduce-equivalent round in the
// DES: rooted families pay reduce (root_finish) + bcast (total) + two
// collective setups; single-schedule allreduces pay their own total + one
// setup. Ranks sweep {64, 160, 512, 1024}, message sizes {1, 16, 64, 256}
// MiB. Each rank count is simulated on the cluster preset the runtime's own
// tuner would pick for that world size (core::tuning_cluster_for): the
// paper-era Cluster-A with its Kepler GDR-read bottleneck at <= 192 ranks,
// the dual-rail fat-tree beyond — so the crossover reflects the hardware
// each scale actually runs on, not one preset stretched across both regimes.
//
// A dedicated second figure pins the NVLink-dense preset (128 nodes x 8
// GPUs: NVLink-class links inside the node, one lean EDR rail across) over
// {64, 512, 1024} ranks, so every scale-out preset — Cluster-A, the
// dual-rail fat-tree, and the NVLink-dense node — has its own crossover
// series. The NVLink figure is where topology awareness matters most: the
// intra/inter bandwidth ratio is an order of magnitude, so schedules that
// ignore node boundaries pay for it.
//
// Writes machine-readable BENCH_schedules.json including a per-point
// crossover summary with three series: best hierarchical (the paper's
// design), best flat baseline (Bin/Chain — what the paper beat), and best
// scale-out schedule (DBT/rings — what overtakes the paper at scale). The
// paper's CB-k advantage over its own baselines stays intact at <= 160
// ranks ("paper_advantage"); the fused schedules win the
// allreduce-equivalent round because the rooted pair cannot overlap its
// reduce with its bcast across the root update.
// SCAFFE_BENCH_SMOKE=1 shrinks to the 64-rank point; SCAFFE_SCHED_ASSERT=1
// exits nonzero when, at the 64-rank / 64 MiB point, DBT loses to the flat
// binomial pair, the topology ring loses to the flat chain pair, or CC-8
// loses its paper advantage over the binomial pair (scripts/check.sh).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/dbt.h"
#include "coll/sim_executor.h"
#include "coll/topo_ring.h"
#include "coll/tuner.h"
#include "core/coll_select.h"
#include "net/cost_model.h"
#include "net/topology.h"
#include "util/bytes.h"

using namespace scaffe;

namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

struct Point {
  int ranks = 0;
  std::size_t bytes = 0;
};

struct Row {
  int ranks = 0;
  std::size_t bytes = 0;
  std::string algo;
  bool hierarchical = false;  // CB-k / CC-k family (the paper's design)
  double ms = 0;
  std::size_t events = 0;
};

struct Runner {
  net::ClusterSpec cluster;
  coll::ExecPolicy policy = coll::ExecPolicy::hr_gdr();

  /// Rooted reduce+bcast pair: root_finish of the reduce (update happens at
  /// the root) plus the full bcast, plus two per-collective setups.
  Row pair(const Point& p, const std::string& name, bool hier, const coll::Schedule& reduce,
           const coll::Schedule& bcast) const {
    const net::CostModel cost(cluster);
    const auto r = coll::simulate_schedule(reduce, cluster, policy);
    const auto b = coll::simulate_schedule(bcast, cluster, policy);
    Row row{p.ranks, p.bytes, name, hier, 0, r.events + b.events};
    row.ms = static_cast<double>(2 * cost.collective_setup(p.ranks) + r.root_finish +
                                 b.total) /
             1e6;
    return row;
  }

  /// Single-schedule allreduce: its own makespan plus one setup.
  Row fused(const Point& p, const std::string& name, const coll::Schedule& allreduce) const {
    const net::CostModel cost(cluster);
    const auto result = coll::simulate_schedule(allreduce, cluster, policy);
    Row row{p.ranks, p.bytes, name, false, 0, result.events};
    row.ms = static_cast<double>(cost.collective_setup(p.ranks) + result.total) / 1e6;
    return row;
  }
};

/// Every schedule family evaluated at one (ranks, bytes) point on one
/// cluster. Shared by the default (per-scale preset) sweep and the dedicated
/// NVLink-dense figure.
std::vector<Row> rows_at_point(const Runner& runner, const net::Topology& topo,
                               const Point& p, int chunks, std::size_t segment_bytes) {
  const int ranks = p.ranks;
  const std::size_t count = p.bytes / sizeof(float);

  std::vector<Row> at_point;
  at_point.push_back(runner.pair(p, "Bin", false, coll::binomial_reduce(ranks, 0, count),
                                 coll::binomial_bcast(ranks, 0, count)));
  at_point.push_back(runner.pair(p, "Chain", false,
                                 coll::chain_reduce(ranks, 0, count, chunks),
                                 coll::chain_bcast(ranks, 0, count, chunks)));
  // The hierarchical rows take the best chunk count per point, mirroring
  // the runtime's tuner (which sweeps chunking) rather than pinning one
  // pipeline depth across message sizes.
  for (int k : {8, 16}) {
    for (const char* level : {"CB", "CC"}) {
      const coll::LevelAlgo upper =
          level[1] == 'B' ? coll::LevelAlgo::Binomial : coll::LevelAlgo::Chain;
      Row best;
      for (int c : {chunks, 64}) {
        Row row = runner.pair(
            p, std::string(level) + "-" + std::to_string(k), true,
            coll::hierarchical_reduce(ranks, count, k, coll::LevelAlgo::Chain, upper, c),
            coll::binomial_bcast(ranks, 0, count));
        if (best.algo.empty() || row.ms < best.ms) best = row;
      }
      at_point.push_back(best);
    }
  }
  at_point.push_back(runner.pair(p, "DBT", false, coll::dbt_reduce(ranks, 0, count),
                                 coll::dbt_bcast(ranks, 0, count)));
  at_point.push_back(runner.fused(p, "Ring", coll::ring_allreduce(ranks, count)));
  at_point.push_back(
      runner.fused(p, "TopoRing", coll::topo_ring_allreduce(topo, count, segment_bytes)));
  at_point.push_back(runner.fused(p, "DBT-AR", coll::dbt_allreduce(ranks, count)));
  return at_point;
}

/// Crossover summary: per point, the best hierarchical (paper) family vs
/// the best scale-out schedule, with the paper's own flat baseline alongside.
struct Crossover {
  int ranks;
  std::size_t mib;
  std::string best_hier;
  double hier_ms;
  std::string best_new;
  double new_ms;
  std::string best_flat;  // the paper's own baselines: flat Bin / Chain pair
  double flat_ms;
};

std::vector<Crossover> crossovers_for(const std::vector<Row>& rows,
                                      const std::vector<int>& rank_counts,
                                      const std::vector<std::size_t>& sizes_mib,
                                      const char* label) {
  std::vector<Crossover> crossovers;
  for (int ranks : rank_counts) {
    for (std::size_t mib : sizes_mib) {
      Crossover c{ranks, mib, "", 1e300, "", 1e300, "", 1e300};
      for (const Row& row : rows) {
        if (row.ranks != ranks || row.bytes != mib * util::kMiB) continue;
        if (row.hierarchical) {
          if (row.ms < c.hier_ms) {
            c.hier_ms = row.ms;
            c.best_hier = row.algo;
          }
        } else if (row.algo == "Bin" || row.algo == "Chain") {
          if (row.ms < c.flat_ms) {
            c.flat_ms = row.ms;
            c.best_flat = row.algo;
          }
        } else if (row.algo == "DBT" || row.algo == "DBT-AR" || row.algo == "Ring" ||
                   row.algo == "TopoRing") {
          if (row.ms < c.new_ms) {
            c.new_ms = row.ms;
            c.best_new = row.algo;
          }
        }
      }
      std::printf(
          "%scrossover %4d ranks %4zu MiB: %s %.3f ms vs %s %.3f ms -> %s "
          "(paper baseline %s %.3f ms)\n",
          label, ranks, mib, c.best_hier.c_str(), c.hier_ms, c.best_new.c_str(), c.new_ms,
          c.new_ms < c.hier_ms ? "scale-out" : "hierarchical", c.best_flat.c_str(),
          c.flat_ms);
      crossovers.push_back(c);
    }
  }
  return crossovers;
}

void write_rows_json(std::FILE* out, const std::vector<Row>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"mib\": %zu, \"algo\": \"%s\", "
                 "\"hierarchical\": %s, \"ms\": %.3f, \"events\": %zu}%s\n",
                 row.ranks, row.bytes / util::kMiB, row.algo.c_str(),
                 row.hierarchical ? "true" : "false", row.ms, row.events,
                 i + 1 < rows.size() ? "," : "");
  }
}

void write_crossovers_json(std::FILE* out, const std::vector<Crossover>& crossovers) {
  for (std::size_t i = 0; i < crossovers.size(); ++i) {
    const Crossover& c = crossovers[i];
    std::fprintf(out,
                 "    {\"ranks\": %d, \"mib\": %zu, \"best_hier\": \"%s\", "
                 "\"hier_ms\": %.3f, \"best_new\": \"%s\", \"new_ms\": %.3f, "
                 "\"best_flat\": \"%s\", \"flat_ms\": %.3f, "
                 "\"paper_advantage\": %s, \"winner\": \"%s\"}%s\n",
                 c.ranks, c.mib, c.best_hier.c_str(), c.hier_ms, c.best_new.c_str(),
                 c.new_ms, c.best_flat.c_str(), c.flat_ms,
                 c.hier_ms < c.flat_ms ? "true" : "false",
                 c.new_ms < c.hier_ms ? "scale-out" : "hierarchical",
                 i + 1 < crossovers.size() ? "," : "");
  }
}

}  // namespace

int main() {
  const bool smoke = env_flag("SCAFFE_BENCH_SMOKE");
  const bool assert_mode = env_flag("SCAFFE_SCHED_ASSERT");

  const std::vector<int> rank_counts =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 160, 512, 1024};
  const std::vector<std::size_t> sizes_mib =
      smoke ? std::vector<std::size_t>{16, 64} : std::vector<std::size_t>{1, 16, 64, 256};
  const int chunks = 16;
  // Segment target for the segmented ring: the runtime derives this from the
  // communicator's eager limit; the DES sweep pins the same 1 MiB the
  // transport tuner lands on so results are machine-independent.
  const std::size_t segment_bytes = util::kMiB;

  std::vector<Row> rows;
  std::vector<std::pair<int, std::string>> cluster_names;
  std::printf("%-6s %-9s %-10s %12s\n", "ranks", "MiB", "algo", "ms");
  for (int ranks : rank_counts) {
    const Runner runner{core::tuning_cluster_for(ranks)};
    cluster_names.emplace_back(ranks, runner.cluster.name);
    std::printf("# %d ranks on %s\n", ranks, runner.cluster.name.c_str());
    const net::Topology topo(runner.cluster, ranks);
    for (std::size_t mib : sizes_mib) {
      const Point p{ranks, mib * util::kMiB};
      for (const Row& row : rows_at_point(runner, topo, p, chunks, segment_bytes)) {
        std::printf("%-6d %-9zu %-10s %12.3f\n", row.ranks, mib, row.algo.c_str(), row.ms);
        rows.push_back(row);
      }
    }
  }

  const std::vector<Crossover> crossovers =
      crossovers_for(rows, rank_counts, sizes_mib, "");

  // Dedicated NVLink-dense figure: the same families pinned to the
  // NVLink-dense preset (absent from tuning_cluster_for's ladder) over its
  // interesting scales, so the third scale-out preset gets a crossover
  // series of its own. The extreme intra/inter bandwidth ratio is where the
  // topology-aware ring earns its name.
  const Runner nvlink_runner{net::ClusterSpec::nvlink_dense_node()};
  const std::vector<int> nvlink_ranks =
      smoke ? std::vector<int>{64} : std::vector<int>{64, 512, 1024};
  std::vector<Row> nvlink_rows;
  std::printf("# NVLink-dense figure: %s\n", nvlink_runner.cluster.name.c_str());
  for (int ranks : nvlink_ranks) {
    const net::Topology topo(nvlink_runner.cluster, ranks);
    for (std::size_t mib : sizes_mib) {
      const Point p{ranks, mib * util::kMiB};
      for (const Row& row :
           rows_at_point(nvlink_runner, topo, p, chunks, segment_bytes)) {
        std::printf("nvlink %-6d %-9zu %-10s %12.3f\n", row.ranks, mib, row.algo.c_str(),
                    row.ms);
        nvlink_rows.push_back(row);
      }
    }
  }
  const std::vector<Crossover> nvlink_crossovers =
      crossovers_for(nvlink_rows, nvlink_ranks, sizes_mib, "nvlink ");

  bool assert_failed = false;
  if (assert_mode) {
    // The CI smoke gate: at 64 ranks / 64 MiB the pipelined tree must beat
    // the unpipelined binomial pair and the topology ring must beat the flat
    // chain pair. These are the weakest claims of the crossover figure; the
    // full-sweep claims are recorded in the JSON for offline inspection.
    auto find_ms = [](const std::vector<Row>& in, const char* algo) {
      for (const Row& row : in) {
        if (row.ranks == 64 && row.bytes == 64 * util::kMiB && row.algo == algo) {
          return row.ms;
        }
      }
      return -1.0;
    };
    const double bin = find_ms(rows, "Bin");
    const double dbt = find_ms(rows, "DBT");
    const double chain = find_ms(rows, "Chain");
    const double topo_ring = find_ms(rows, "TopoRing");
    const double cc8 = find_ms(rows, "CC-8");
    if (bin < 0 || dbt < 0 || chain < 0 || topo_ring < 0 || cc8 < 0) {
      std::fprintf(stderr, "SCHED ASSERT: 64-rank/64MiB rows missing\n");
      assert_failed = true;
    } else {
      if (dbt > bin) {
        std::fprintf(stderr, "SCHED ASSERT FAILED: DBT %.3f ms > Bin %.3f ms\n", dbt, bin);
        assert_failed = true;
      }
      if (topo_ring > chain) {
        std::fprintf(stderr, "SCHED ASSERT FAILED: TopoRing %.3f ms > Chain %.3f ms\n",
                     topo_ring, chain);
        assert_failed = true;
      }
      // The paper's claim, preserved: hierarchical still beats the flat
      // baselines it was designed against at small scale.
      if (cc8 > bin) {
        std::fprintf(stderr, "SCHED ASSERT FAILED: CC-8 %.3f ms > Bin %.3f ms\n", cc8, bin);
        assert_failed = true;
      }
      // On the NVLink-dense node the segmented rings must beat the rooted
      // chain pair at 64 ranks / 64 MiB: with a ~10x intra/inter bandwidth
      // gap, a schedule that saturates every link beats one that serializes
      // through a root. (The flat ring's rank order is node-contiguous in
      // the DES, so Ring vs TopoRing is a wash here — the claim is rings vs
      // the paper's rooted baselines, per series.)
      const double nv_chain = find_ms(nvlink_rows, "Chain");
      const double nv_topo = find_ms(nvlink_rows, "TopoRing");
      if (nv_chain < 0 || nv_topo < 0) {
        std::fprintf(stderr, "SCHED ASSERT: NVLink 64-rank/64MiB rows missing\n");
        assert_failed = true;
      } else if (nv_topo > nv_chain) {
        std::fprintf(stderr,
                     "SCHED ASSERT FAILED: NVLink TopoRing %.3f ms > Chain %.3f ms\n",
                     nv_topo, nv_chain);
        assert_failed = true;
      }
    }
  }

  const char* json_path = "BENCH_schedules.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"clusters\": [\n");
  for (std::size_t i = 0; i < cluster_names.size(); ++i) {
    std::fprintf(out, "    {\"ranks\": %d, \"cluster\": \"%s\"}%s\n", cluster_names[i].first,
                 cluster_names[i].second.c_str(),
                 i + 1 < cluster_names.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"segment_bytes\": %zu,\n", segment_bytes);
  std::fprintf(out, "  \"results\": [\n");
  write_rows_json(out, rows);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"crossover\": [\n");
  write_crossovers_json(out, crossovers);
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"nvlink\": {\n");
  std::fprintf(out, "    \"cluster\": \"%s\",\n", nvlink_runner.cluster.name.c_str());
  std::fprintf(out, "    \"results\": [\n");
  write_rows_json(out, nvlink_rows);
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"crossover\": [\n");
  write_crossovers_json(out, nvlink_crossovers);
  std::fprintf(out, "    ]\n  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return assert_failed ? 1 : 0;
}
