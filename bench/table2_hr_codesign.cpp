// Table 2: SC-B vs SC-B (+HR) — gradient aggregation time and total
// iteration time for different communicator/chain-size configurations
// (CC-8, CB-4, CB-8), on a CaffeNet-class aggregation. Paper: 2.3x speedup
// for aggregation with CB-8, 1.25x overall. Second section: SC-OBR's
// improvement over SC-B (paper: 20% at 8 GPUs, 12% at 16, CaffeNet).
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/duration.h"

using namespace scaffe;
using core::ReduceAlgo;
using core::TrainPerfConfig;
using core::Variant;

namespace {

TrainPerfConfig base_config(int gpus) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::caffenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = 1024;
  config.variant = Variant::SCB;
  return config;
}

}  // namespace

int main() {
  bench::print_heading("Table 2", "SC-B vs SC-B (+HR): aggregation and total time (ms), "
                                  "CaffeNet-class model, 32 GPUs, Cluster-A");

  const int gpus = 32;
  TrainPerfConfig stock = base_config(gpus);
  stock.reduce = ReduceAlgo::binomial();
  stock.comm_policy = coll::ExecPolicy::mvapich2();
  const auto scb = core::simulate_training_iteration(stock);
  const double scb_agg = util::to_ms(scb.aggregation_exposed);
  const double scb_total = util::to_ms(scb.total);

  util::Table out({"Algorithm/Comm", "Config", "Aggregation (ms)", "Total (ms)",
                   "Speedup (aggregation)", "Overall speedup"});
  out.add_row({"N/A", "SC-B", util::fmt_double(scb_agg, 1), util::fmt_double(scb_total, 1),
               "1", "1"});

  struct Row {
    const char* label;
    ReduceAlgo algo;
  };
  for (const Row& row : {Row{"CC-8", ReduceAlgo::cc(8)}, Row{"CB-4", ReduceAlgo::cb(4)},
                         Row{"CB-8", ReduceAlgo::cb(8)}}) {
    TrainPerfConfig hr = base_config(gpus);
    hr.reduce = row.algo;
    hr.comm_policy = coll::ExecPolicy::hr_gdr();
    const auto result = core::simulate_training_iteration(hr);
    const double agg = util::to_ms(result.aggregation_exposed);
    const double total = util::to_ms(result.total);
    out.add_row({row.label, "SC-B (+HR)", util::fmt_double(agg, 1),
                 util::fmt_double(total, 1), util::fmt_speedup(scb_agg / agg),
                 util::fmt_speedup(scb_total / total)});
  }
  bench::print_table(out);
  bench::print_note("paper: CB-8 gives 2.3x aggregation speedup, 1.25x overall");

  // --- SC-OBR improvement over SC-B (Section 6.6 text) ----------------------
  bench::print_heading("Section 6.6", "SC-OBR improvement over SC-B (CaffeNet)");
  util::Table obr({"GPUs", "SC-B total (ms)", "SC-OBR total (ms)", "improvement"});
  for (int p : {8, 16}) {
    TrainPerfConfig b = base_config(p);
    b.scaling = core::Scaling::Weak;
    b.global_batch = 256;  // per-GPU batch
    b.reduce = ReduceAlgo::cb(8);
    b.comm_policy = coll::ExecPolicy::hr_gdr();
    const auto scb_result = core::simulate_training_iteration(b);
    TrainPerfConfig o = b;
    o.variant = Variant::SCOBR;
    const auto obr_result = core::simulate_training_iteration(o);
    obr.add_row({std::to_string(p), util::fmt_double(util::to_ms(scb_result.total), 1),
                 util::fmt_double(util::to_ms(obr_result.total), 1),
                 util::fmt_double(
                     (1.0 - util::to_sec(obr_result.total) / util::to_sec(scb_result.total)) *
                         100.0,
                     1) +
                     "%"});
  }
  bench::print_table(obr);
  bench::print_note("paper: 20% at 8 GPUs, 12% at 16 GPUs");
  return 0;
}
