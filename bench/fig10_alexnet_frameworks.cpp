// Figure 10: AlexNet samples/second on Cluster-B — S-Caffe vs CNTK vs
// Inspur-Caffe (parameter server). Inspur points exist only for 2-16 GPUs
// (it hangs outside that envelope). Plus the single-node section backing the
// abstract's 14%/9% improvement over NVIDIA Caffe at 8/16 GPUs.
#include <optional>

#include "baselines/comparators.h"
#include "baselines/param_server.h"
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"

using namespace scaffe;
using core::TrainPerfConfig;

namespace {

TrainPerfConfig config_b(int gpus) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::alexnet();
  config.cluster = net::ClusterSpec::cluster_b();
  config.gpus = gpus;
  config.global_batch = 1024;
  config.variant = core::Variant::SCOBR;
  config.reduce = core::ReduceAlgo::cb(2);  // 2 CUDA devices per node
  return config;
}

std::string sps(const std::optional<core::IterationBreakdown>& result) {
  if (!result) return "-";
  if (result->oom || result->reader_failed) return "X";
  return util::fmt_double(result->samples_per_sec, 0);
}

}  // namespace

int main() {
  bench::print_heading("Figure 10",
                       "AlexNet samples/second (higher is better), Cluster-B");
  bench::print_note("Inspur-Caffe (parameter server) runs only for 2-16 GPUs");

  util::Table table({"GPUs", "S-Caffe", "CNTK", "Inspur-Caffe (PS)"});
  for (int gpus : {1, 2, 4, 8, 16}) {
    const TrainPerfConfig config = config_b(gpus);
    const auto scaffe = core::simulate_training_iteration(config);
    const auto cntk = baselines::simulate_cntk_iteration(config);
    const auto inspur = baselines::simulate_param_server_iteration(config);
    table.add_row({std::to_string(gpus), sps(scaffe), sps(cntk), sps(inspur)});
  }
  bench::print_table(table);

  const auto peak = core::simulate_training_iteration(config_b(16));
  std::printf("\nS-Caffe peak: %.0f samples/s (paper: up to 1395 SPS, comparable to CNTK)\n",
              peak.samples_per_sec);

  // --- single-node section: S-Caffe vs NVIDIA Caffe (abstract: 14%% / 9%%) ---
  bench::print_heading("Figure 10b (abstract claim)",
                       "single-node AlexNet: S-Caffe vs NVIDIA Caffe, Cluster-A");
  util::Table single({"GPUs", "NVIDIA-Caffe SPS", "S-Caffe SPS", "improvement"});
  for (int gpus : {8, 16}) {
    TrainPerfConfig config;
    config.model = models::ModelDesc::alexnet();
    config.cluster = net::ClusterSpec::cluster_a();
    config.gpus = gpus;
    config.scaling = core::Scaling::Weak;
    config.global_batch = 256;  // per-GPU batch (the AlexNet reference size)
    config.variant = core::Variant::SCOBR;
    config.reduce = core::ReduceAlgo::cb(8);
    const auto scaffe = core::simulate_training_iteration(config);
    const auto nv = baselines::simulate_nvcaffe_iteration(config);
    const double gain = scaffe.samples_per_sec / nv->samples_per_sec - 1.0;
    single.add_row({std::to_string(gpus), sps(nv), sps(scaffe),
                    util::fmt_double(gain * 100.0, 1) + "%"});
  }
  bench::print_table(single);
  std::printf("(paper: 14%% at 8 GPUs, 9%% at 16 GPUs)\n");
  return 0;
}
