// Figure 12: MPI_Reduce latency comparison (log-scale in the paper):
// MVAPICH2 vs OpenMPI 1.10.2 vs the proposed HR, 160 processes, Cluster-A.
// The paper reports HR almost 3x faster than MVAPICH2 and up to 133x faster
// than OpenMPI at DL message sizes.
#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "coll/sim_executor.h"
#include "coll/tuner.h"
#include "net/cluster.h"
#include "util/bytes.h"

using namespace scaffe;
using namespace scaffe::coll;

int main() {
  bench::print_heading("Figure 12",
                       "MPI_Reduce: MVAPICH2 vs OpenMPI vs proposed HR, 160 GPUs (us)");

  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const int nranks = 160;
  const TuningTable table = hr_tune(cluster, nranks, ExecPolicy::hr_gdr());

  double max_mv2_ratio = 0.0;
  double max_ompi_ratio = 0.0;

  util::Table out({"size", "MV2", "OpenMPI", "HR", "MV2/HR", "OpenMPI/HR"});
  for (std::size_t bytes = 4; bytes <= 256 * util::kMiB; bytes *= 4) {
    const std::size_t count = std::max<std::size_t>(bytes / sizeof(float), 1);
    const Schedule flat = binomial_reduce(nranks, 0, count);
    const auto mv2 = simulate_schedule(flat, cluster, ExecPolicy::mvapich2());
    const auto ompi = simulate_schedule(flat, cluster, ExecPolicy::openmpi());
    const auto hr = simulate_schedule(hr_tuned_reduce(table, nranks, count), cluster,
                                      ExecPolicy::hr_gdr());

    const double mv2_ratio =
        static_cast<double>(mv2.root_finish) / static_cast<double>(hr.root_finish);
    const double ompi_ratio =
        static_cast<double>(ompi.root_finish) / static_cast<double>(hr.root_finish);
    max_mv2_ratio = std::max(max_mv2_ratio, mv2_ratio);
    max_ompi_ratio = std::max(max_ompi_ratio, ompi_ratio);

    out.add_row({util::fmt_bytes(bytes), util::fmt_double(util::to_us(mv2.root_finish), 1),
                 util::fmt_double(util::to_us(ompi.root_finish), 1),
                 util::fmt_double(util::to_us(hr.root_finish), 1),
                 util::fmt_speedup(mv2_ratio), util::fmt_speedup(ompi_ratio)});
  }
  bench::print_table(out);

  std::printf("\nmax speedup over MVAPICH2: %s (paper: ~2.6-3x)\n",
              util::fmt_speedup(max_mv2_ratio).c_str());
  std::printf("max speedup over OpenMPI:  %s (paper: up to 133x)\n",
              util::fmt_speedup(max_ompi_ratio).c_str());
  return 0;
}
