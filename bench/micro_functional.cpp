// google-benchmark microbenchmarks of the FUNCTIONAL substrate (real wall
// clock, this machine): reduction kernels, schedule executors, and scmpi
// collectives. These complement the modelled figures: they measure the code
// that actually moves and sums bytes in the functional runs.
#include <benchmark/benchmark.h>

#include <vector>

#include "coll/algorithms.h"
#include "coll/logical_executor.h"
#include "coll/thread_executor.h"
#include "gpu/kernels.h"
#include "mpi/comm.h"

using namespace scaffe;

namespace {

void BM_KernelAccumulate(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> src(count, 1.0f);
  std::vector<float> acc(count, 0.0f);
  for (auto _ : state) {
    gpu::accumulate(src, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_KernelAccumulate)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_KernelSgdUpdate(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> param(count, 1.0f);
  std::vector<float> grad(count, 0.01f);
  std::vector<float> momentum(count, 0.0f);
  for (auto _ : state) {
    gpu::sgd_update(param, grad, momentum, 0.01f, 0.9f, 0.0005f);
    benchmark::DoNotOptimize(param.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_KernelSgdUpdate)->Arg(1 << 16)->Arg(1 << 20);

void BM_LogicalExecutorBinomial(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 4096;
  const coll::Schedule schedule = coll::binomial_reduce(nranks, 0, count);
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(nranks),
                                         std::vector<float>(count, 1.0f));
  for (auto _ : state) {
    auto result = coll::run_logical(schedule, inputs);
    benchmark::DoNotOptimize(result.final_buffers.data());
  }
}
BENCHMARK(BM_LogicalExecutorBinomial)->Arg(4)->Arg(16)->Arg(64);

void BM_ThreadExecutorReduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 16;
  const coll::Schedule schedule = coll::hierarchical_reduce(
      nranks, count, 4, coll::LevelAlgo::Chain, coll::LevelAlgo::Binomial, 8);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count, 1.0f));
  for (auto _ : state) {
    std::vector<std::span<float>> spans;
    for (auto& v : data) {
      std::fill(v.begin(), v.end(), 1.0f);
      spans.emplace_back(v);
    }
    coll::run_threaded(schedule, spans);
    benchmark::DoNotOptimize(data[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)) * (nranks - 1));
}
BENCHMARK(BM_ThreadExecutorReduce)->Arg(4)->Arg(8);

void BM_ScmpiAllreduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 14;
  mpi::Runtime runtime(nranks);
  for (auto _ : state) {
    runtime.run([&](mpi::Comm& comm) {
      std::vector<float> data(count, 1.0f);
      comm.allreduce(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_ScmpiAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_ScmpiIbcastOverlap(benchmark::State& state) {
  const int nranks = 4;
  const std::size_t count = 1 << 16;
  mpi::Runtime runtime(nranks);
  for (auto _ : state) {
    runtime.run([&](mpi::Comm& comm) {
      std::vector<float> data(count, comm.rank() == 0 ? 1.0f : 0.0f);
      mpi::Request request = comm.ibcast(data, 0);
      // Simulated "forward pass" while the broadcast progresses.
      double acc = 0.0;
      for (int i = 0; i < 10000; ++i) acc += i * 0.5;
      benchmark::DoNotOptimize(acc);
      request.wait();
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_ScmpiIbcastOverlap);

}  // namespace

BENCHMARK_MAIN();
