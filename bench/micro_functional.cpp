// Microbenchmarks of the FUNCTIONAL substrate (real wall clock, this
// machine): reduction kernels, schedule executors, scmpi collectives, and —
// since the multithreaded math core landed — a thread-count sweep of the DL
// hot paths (conv fwd/bwd, FC, sgd_update) that writes a machine-readable
// BENCH_micro_functional.json so the perf trajectory is tracked PR over PR.
//
// Usage: micro_functional [--sweep-only] [google-benchmark flags]
//   The sweep always runs first and writes the JSON; --sweep-only skips the
//   google-benchmark suite afterwards.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coll/algorithms.h"
#include "coll/logical_executor.h"
#include "coll/thread_executor.h"
#include "dl/layer.h"
#include "dl/math.h"
#include "gpu/kernels.h"
#include "mpi/comm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

void BM_KernelAccumulate(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> src(count, 1.0f);
  std::vector<float> acc(count, 0.0f);
  for (auto _ : state) {
    gpu::accumulate(src, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_KernelAccumulate)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_KernelSgdUpdate(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<float> param(count, 1.0f);
  std::vector<float> grad(count, 0.01f);
  std::vector<float> momentum(count, 0.0f);
  for (auto _ : state) {
    gpu::sgd_update(param, grad, momentum, 0.01f, 0.9f, 0.0005f);
    benchmark::DoNotOptimize(param.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)));
}
BENCHMARK(BM_KernelSgdUpdate)->Arg(1 << 16)->Arg(1 << 20);

void BM_LogicalExecutorBinomial(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 4096;
  const coll::Schedule schedule = coll::binomial_reduce(nranks, 0, count);
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(nranks),
                                         std::vector<float>(count, 1.0f));
  for (auto _ : state) {
    auto result = coll::run_logical(schedule, inputs);
    benchmark::DoNotOptimize(result.final_buffers.data());
  }
}
BENCHMARK(BM_LogicalExecutorBinomial)->Arg(4)->Arg(16)->Arg(64);

void BM_ThreadExecutorReduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 16;
  const coll::Schedule schedule = coll::hierarchical_reduce(
      nranks, count, 4, coll::LevelAlgo::Chain, coll::LevelAlgo::Binomial, 8);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(nranks),
                                       std::vector<float>(count, 1.0f));
  for (auto _ : state) {
    std::vector<std::span<float>> spans;
    for (auto& v : data) {
      std::fill(v.begin(), v.end(), 1.0f);
      spans.emplace_back(v);
    }
    coll::run_threaded(schedule, spans);
    benchmark::DoNotOptimize(data[0].data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(float)) * (nranks - 1));
}
BENCHMARK(BM_ThreadExecutorReduce)->Arg(4)->Arg(8);

void BM_ScmpiAllreduce(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const std::size_t count = 1 << 14;
  mpi::Runtime runtime(nranks);
  for (auto _ : state) {
    runtime.run([&](mpi::Comm& comm) {
      std::vector<float> data(count, 1.0f);
      comm.allreduce(data);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_ScmpiAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_ScmpiIbcastOverlap(benchmark::State& state) {
  const int nranks = 4;
  const std::size_t count = 1 << 16;
  mpi::Runtime runtime(nranks);
  for (auto _ : state) {
    runtime.run([&](mpi::Comm& comm) {
      std::vector<float> data(count, comm.rank() == 0 ? 1.0f : 0.0f);
      mpi::Request request = comm.ibcast(data, 0);
      // Simulated "forward pass" while the broadcast progresses.
      double acc = 0.0;
      for (int i = 0; i < 10000; ++i) acc += i * 0.5;
      benchmark::DoNotOptimize(acc);
      request.wait();
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_ScmpiIbcastOverlap);

void BM_SgemmNN(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(dim) * dim, 1.0f);
  std::vector<float> b(static_cast<std::size_t>(dim) * dim, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(dim) * dim, 0.0f);
  for (auto _ : state) {
    dl::math::sgemm(false, false, dim, dim, dim, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(dim) * dim * dim);
}
BENCHMARK(BM_SgemmNN)->Arg(128)->Arg(256)->Arg(512);

// --- DL hot-path thread sweep -> BENCH_micro_functional.json ----------------

using Clock = std::chrono::steady_clock;

double time_best_ms(int reps, const std::function<void()>& fn) {
  fn();  // warm up (first-touch, buffer growth)
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    best = std::min(best, ms);
  }
  return best;
}

struct ConvBench {
  dl::LayerSpec spec;
  std::unique_ptr<dl::Layer> layer;
  dl::Blob bottom, top;
  std::vector<dl::Blob*> bottoms, tops;

  ConvBench(dl::ConvImpl impl, int batch, int channels, int hw, int num_output, int kernel,
            int pad) {
    spec = dl::LayerSpec::conv("conv", "x", "y", num_output, kernel, 1, pad);
    spec.conv_impl = impl;
    layer = dl::make_layer(spec);
    bottom.reshape({batch, channels, hw, hw});
    util::Rng rng(7);
    for (float& v : bottom.data()) v = static_cast<float>(rng.normal());
    bottoms = {&bottom};
    tops = {&top};
    layer->setup(bottoms, tops, rng);
    for (float& v : top.diff()) v = static_cast<float>(rng.normal(0.0, 0.01));
  }
  void forward() { layer->forward(bottoms, tops); }
  void backward() { layer->backward(tops, bottoms); }
};

/// AlexNet conv3-shaped layer at batch 8 plus an fc6-shaped inner product and
/// a CaffeNet-sized sgd_update, each timed at 1/2/4/8 pool threads against
/// the seed's single-threaded direct-conv path.
void run_functional_sweep(const char* json_path) {
  const int kThreadCounts[] = {1, 2, 4, 8};
  // AlexNet conv3: 256 -> 384 channels, 13x13, 3x3 kernel, pad 1, batch 8.
  const int batch = 8, channels = 256, hw = 13, num_output = 384, kernel = 3, pad = 1;

  std::printf("functional sweep (conv3-shaped, batch %d)...\n", batch);

  // Seed baseline: the direct triple-loop path, single-threaded.
  util::ThreadPool::set_global_threads(1);
  ConvBench direct(dl::ConvImpl::Direct, batch, channels, hw, num_output, kernel, pad);
  const double direct_fwd_ms = time_best_ms(2, [&] { direct.forward(); });
  const double direct_bwd_ms = time_best_ms(2, [&] { direct.backward(); });
  std::printf("  direct (seed path, 1 thread): fwd %.1f ms, bwd %.1f ms\n", direct_fwd_ms,
              direct_bwd_ms);

  struct Row {
    int threads;
    double conv_fwd_ms, conv_bwd_ms, fc_fwd_ms, fc_bwd_ms, sgd_ms;
  };
  std::vector<Row> rows;

  // FC: fc6-shaped inner product, batch 8, 4096 -> 4096.
  const int fc_batch = 8, fc_in = 4096, fc_out = 4096;
  // sgd_update: CaffeNet-order parameter vector (16M floats = 64 MB).
  const std::size_t sgd_count = std::size_t{1} << 24;

  for (const int threads : kThreadCounts) {
    util::ThreadPool::set_global_threads(threads);
    Row row{threads, 0, 0, 0, 0, 0};

    ConvBench gemm(dl::ConvImpl::Im2colGemm, batch, channels, hw, num_output, kernel, pad);
    row.conv_fwd_ms = time_best_ms(3, [&] { gemm.forward(); });
    row.conv_bwd_ms = time_best_ms(3, [&] { gemm.backward(); });

    {
      dl::LayerSpec fc_spec = dl::LayerSpec::inner_product("fc", "x", "y", fc_out);
      auto fc = dl::make_layer(fc_spec);
      dl::Blob fx({fc_batch, fc_in}), fy;
      util::Rng rng(11);
      for (float& v : fx.data()) v = static_cast<float>(rng.normal());
      std::vector<dl::Blob*> fb{&fx}, ft{&fy};
      fc->setup(fb, ft, rng);
      for (float& v : fy.diff()) v = static_cast<float>(rng.normal(0.0, 0.01));
      row.fc_fwd_ms = time_best_ms(3, [&] { fc->forward(fb, ft); });
      row.fc_bwd_ms = time_best_ms(3, [&] { fc->backward(ft, fb); });
    }

    {
      std::vector<float> param(sgd_count, 1.0f), grad(sgd_count, 0.01f), mom(sgd_count, 0.0f);
      row.sgd_ms = time_best_ms(3, [&] { gpu::sgd_update(param, grad, mom, 0.01f, 0.9f, 5e-4f); });
    }

    std::printf("  threads=%d: conv fwd %.1f ms (%.1fx vs seed), bwd %.1f ms, "
                "fc fwd %.2f ms, sgd %.1f ms\n",
                threads, row.conv_fwd_ms, direct_fwd_ms / row.conv_fwd_ms, row.conv_bwd_ms,
                row.fc_fwd_ms, row.sgd_ms);
    rows.push_back(row);
  }
  util::ThreadPool::set_global_threads(1);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"conv\": {\"shape\": \"batch %d, %dx%dx%d -> %d, k%d p%d\", "
               "\"seed_direct_fwd_ms\": %.3f, \"seed_direct_bwd_ms\": %.3f},\n",
               batch, channels, hw, hw, num_output, kernel, pad, direct_fwd_ms, direct_bwd_ms);
  std::fprintf(out, "  \"fc\": {\"shape\": \"batch %d, %d -> %d\"},\n", fc_batch, fc_in, fc_out);
  std::fprintf(out, "  \"sgd_update\": {\"count\": %zu},\n", sgd_count);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"conv_fwd_ms\": %.3f, \"conv_bwd_ms\": %.3f, "
                 "\"fc_fwd_ms\": %.3f, \"fc_bwd_ms\": %.3f, \"sgd_update_ms\": %.3f, "
                 "\"conv_fwd_speedup_vs_seed\": %.2f}%s\n",
                 row.threads, row.conv_fwd_ms, row.conv_bwd_ms, row.fc_fwd_ms, row.fc_bwd_ms,
                 row.sgd_ms, direct_fwd_ms / row.conv_fwd_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  run_functional_sweep("BENCH_micro_functional.json");
  if (sweep_only) return 0;
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
