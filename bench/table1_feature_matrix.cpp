// Table 1: Design and Features Space for Modern Deep Learning Frameworks.
//
// The paper's Table 1 is a qualitative capability matrix. This binary prints
// it — but the S-Caffe row is not transcribed: each claimed capability is
// DEMONSTRATED live against this repository's implementation (a basic MPI
// collective, a CUDA-aware device-buffer collective, an overlapped NBC, and
// the co-designed HR schedule), so the row is backed by running code.
#include <vector>

#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "core/hr_factory.h"
#include "gpu/device.h"
#include "gpu/kernels.h"
#include "mpi/comm.h"

using namespace scaffe;

namespace {

bool demo_basic_mpi() {
  bool ok = false;
  mpi::Runtime runtime(4);
  runtime.run([&](mpi::Comm& comm) {
    std::vector<float> v(8, 1.0f);
    comm.allreduce(v);
    if (comm.rank() == 0) ok = v[0] == 4.0f;
  });
  return ok;
}

bool demo_cuda_aware() {
  bool ok = false;
  gpu::Device d0(0);
  gpu::Device d1(1);
  mpi::Runtime runtime(2);
  runtime.run([&](mpi::Comm& comm) {
    gpu::Device& device = comm.rank() == 0 ? d0 : d1;
    gpu::DeviceBuffer<float> buffer(device, 128);
    gpu::fill(2.0f, buffer.span());
    comm.allreduce(buffer);  // device buffer straight into the collective
    if (comm.rank() == 0) ok = buffer[0] == 4.0f;
  });
  return ok;
}

bool demo_nbc_overlap() {
  bool ok = false;
  mpi::Runtime runtime(4);
  runtime.run([&](mpi::Comm& comm) {
    std::vector<float> v(1024, comm.rank() == 0 ? 1.0f : 0.0f);
    mpi::Request request = comm.ibcast(v, 0);  // progresses in the background
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) acc += i;  // "forward pass"
    request.wait();
    if (comm.rank() == 3) ok = v[512] == 1.0f && acc > 0;
  });
  return ok;
}

bool demo_codesigned_reduce() {
  bool ok = false;
  mpi::Runtime runtime(8);
  runtime.run([&](mpi::Comm& comm) {
    comm.set_reduce_factory(core::make_reduce_factory(core::ReduceAlgo::cb(4)));
    std::vector<float> v(256, 1.0f);
    comm.reduce(v, 0);
    if (comm.rank() == 0) ok = v[0] == 8.0f;
  });
  return ok;
}

}  // namespace

int main() {
  bench::print_heading("Table 1", "Design and features space for DL frameworks");

  util::Table table({"Framework", "Basic MPI", "CUDA-Aware MPI", "Overlapped (NBC)",
                     "Co-Designed w/ MPI", "Multi-GPU", "Strategy"});
  table.add_row({"Caffe [33]", "x", "x", "x", "x", "yes", "DP / RT"});
  table.add_row({"FireCaffe [30]", "yes", "unknown", "x", "unknown", "yes", "DP / RT"});
  table.add_row({"MPI-Caffe [37]", "yes", "x", "x", "x", "yes", "MP"});
  table.add_row({"CNTK [12]", "yes", "x", "x", "x", "yes", "MP+DP / PS"});
  table.add_row({"Inspur-Caffe [31]", "yes", "yes", "x", "x", "yes", "DP / PS"});

  // The S-Caffe row, demonstrated live:
  const bool basic = demo_basic_mpi();
  const bool cuda_aware = demo_cuda_aware();
  const bool nbc = demo_nbc_overlap();
  const bool codesign = demo_codesigned_reduce();
  table.add_row({"S-Caffe (this repo)", basic ? "yes*" : "FAIL", cuda_aware ? "yes*" : "FAIL",
                 nbc ? "yes*" : "FAIL", codesign ? "yes*" : "FAIL", "yes*", "DP / RT"});
  bench::print_table(table);
  bench::print_note("* verified by executing the capability in this process "
                    "(allreduce over 4 ranks; device-buffer collective; Ibcast overlapped "
                    "with compute; hierarchical CB-4 reduce schedule)");
  return (basic && cuda_aware && nbc && codesign) ? 0 : 1;
}
