// Shared output helpers for the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/table.h"

namespace scaffe::bench {

/// Machine-readable mode: SCAFFE_BENCH_CSV=1 switches tables to CSV.
inline bool csv_mode() {
  const char* env = std::getenv("SCAFFE_BENCH_CSV");
  return env != nullptr && env[0] == '1';
}

inline void print_heading(const std::string& id, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), caption.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("note: %s\n", note.c_str()); }

inline void print_table(const util::Table& table) {
  std::fputs(csv_mode() ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
}

}  // namespace scaffe::bench
