// Figure 9: CIFAR10 quick solver scaling on Cluster-A.
//
// Caffe scales to one node (16 GPUs); S-Caffe continues to 64 GPUs across 4
// nodes. Batch 8192, 1000 iterations. The paper reports ~32x speedup over a
// single GPU at 64 GPUs, and near-identical Caffe/S-Caffe times up to 16
// GPUs (CIFAR10-quick is compute-intensive, so S-Caffe adds no overhead).
#include <optional>
#include <vector>

#include "baselines/comparators.h"
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"

using namespace scaffe;
using core::TrainPerfConfig;

namespace {

TrainPerfConfig config_for(int gpus) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::cifar10_quick();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = 8192;
  config.variant = core::Variant::SCOBR;
  config.reduce = core::ReduceAlgo::cb(16);
  config.iterations = 1000;
  config.sample_bytes = 3073;  // raw CIFAR10 record (3072 pixels + label)
  return config;
}

}  // namespace

int main() {
  bench::print_heading("Figure 9",
                       "CIFAR10 quick solver, batch 8192, 1000 iterations, Cluster-A");

  util::Table table({"GPUs", "Caffe (s)", "S-Caffe (s)", "S-Caffe speedup over 1 GPU"});
  const auto single = core::simulate_training_iteration(config_for(1));
  for (int gpus : {1, 2, 4, 8, 16, 32, 64}) {
    const TrainPerfConfig config = config_for(gpus);
    const auto caffe = baselines::simulate_caffe_iteration(config);
    const auto scaffe = core::simulate_training_iteration(config);
    table.add_row({std::to_string(gpus),
                   caffe ? util::fmt_double(caffe->training_time_sec, 1) : "-",
                   util::fmt_double(scaffe.training_time_sec, 1),
                   util::fmt_speedup(single.training_time_sec / scaffe.training_time_sec)});
  }
  bench::print_table(table);

  const auto at64 = core::simulate_training_iteration(config_for(64));
  std::printf("\nspeedup at 64 GPUs over 1 GPU: %s (paper: ~32-33x)\n",
              util::fmt_speedup(single.training_time_sec / at64.training_time_sec).c_str());

  const auto caffe16 = baselines::simulate_caffe_iteration(config_for(16));
  const auto scaffe16 = core::simulate_training_iteration(config_for(16));
  std::printf("S-Caffe/Caffe at 16 GPUs: %.2f (paper: ~1.0 — no overhead on this "
              "compute-intensive model)\n",
              caffe16->training_time_sec / scaffe16.training_time_sec);
  return 0;
}
