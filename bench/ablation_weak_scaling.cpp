// Weak scaling ablation — the paper's `-scal weak` option ("the batch-size
// of 1,024 remains constant for each of the GPUs. These results are not
// presented but can be obtained using the public version of S-Caffe").
// Here they ARE presented: GoogLeNet with a constant per-GPU batch, so
// per-GPU compute stays fixed while communication grows with scale.
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/duration.h"

using namespace scaffe;
using core::TrainPerfConfig;

int main() {
  bench::print_heading("Weak scaling (paper's -scal weak)",
                       "GoogLeNet, 64 samples/GPU, Cluster-A");

  util::Table out({"GPUs", "SC-B iter (ms)", "SC-B efficiency", "SC-OBR iter (ms)",
                   "SC-OBR efficiency"});
  double base_sps_per_gpu = 0.0;
  for (int gpus : {1, 2, 4, 8, 16, 32, 64, 128, 160}) {
    TrainPerfConfig config;
    config.model = models::ModelDesc::googlenet();
    config.cluster = net::ClusterSpec::cluster_a();
    config.gpus = gpus;
    config.scaling = core::Scaling::Weak;
    config.global_batch = 64;  // per GPU
    config.reduce = core::ReduceAlgo::cb(16);

    config.variant = core::Variant::SCB;
    const auto scb = core::simulate_training_iteration(config);
    config.variant = core::Variant::SCOBR;
    const auto scobr = core::simulate_training_iteration(config);
    if (gpus == 1) base_sps_per_gpu = scobr.samples_per_sec;

    auto eff = [&](const core::IterationBreakdown& r) {
      return util::fmt_double(r.samples_per_sec / (base_sps_per_gpu * gpus) * 100.0, 1) + "%";
    };
    out.add_row({std::to_string(gpus), util::fmt_double(util::to_ms(scb.total), 2), eff(scb),
                 util::fmt_double(util::to_ms(scobr.total), 2), eff(scobr)});
  }
  bench::print_table(out);
  bench::print_note("weak scaling keeps compute constant per GPU; efficiency loss is pure "
                    "communication exposure — the quantity the SC-OB/SC-OBR/HR co-designs "
                    "attack");
  return 0;
}
