// Figure 8: GoogLeNet (ImageNet) strong scaling on Cluster-A.
//
// Series:
//  - Caffe       : BVLC Caffe, single process, <= 16 GPUs (one node), LMDB.
//  - S-Caffe-L   : S-Caffe with LMDB parallel readers (dies past 64 readers).
//  - S-Caffe     : S-Caffe with ImageDataLayer over Lustre, up to 160 GPUs.
//
// Cells show training time for 100 iterations; "OOM" marks batches too large
// for a 12 GB device (the paper's missing points), "X" marks configurations
// the reader backend cannot serve, "-" marks scales a framework cannot reach.
#include <optional>
#include <vector>

#include "baselines/comparators.h"
#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/table.h"

using namespace scaffe;
using core::ReaderBackendKind;
using core::TrainPerfConfig;

namespace {

TrainPerfConfig base_config(int gpus, int batch) {
  TrainPerfConfig config;
  config.model = models::ModelDesc::googlenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = gpus;
  config.global_batch = batch;
  config.variant = core::Variant::SCOBR;
  config.reduce = core::ReduceAlgo::cb(16);
  config.iterations = 100;
  config.sample_bytes = 110 * util::kKiB;  // ImageNet JPEG record
  return config;
}

std::string cell(const std::optional<core::IterationBreakdown>& result) {
  if (!result) return "-";
  if (result->oom) return "OOM";
  if (result->reader_failed) return "X";
  return util::fmt_double(result->training_time_sec, 1) + "s";
}

}  // namespace

int main() {
  bench::print_heading("Figure 8",
                       "GoogLeNet strong scaling, 100 iterations, Cluster-A (time in s)");
  bench::print_note(
      "batch sizes in parentheses; OOM = does not fit 12GB K80 device; "
      "X = LMDB cannot serve that many parallel readers; - = unreachable");

  const std::vector<int> gpu_counts{1, 2, 4, 8, 16, 32, 64, 128, 160};
  const std::vector<int> batches{256, 512, 1024, 2048};

  for (int batch : batches) {
    util::Table table({"GPUs", "Caffe", "S-Caffe-L (LMDB)", "S-Caffe (ImageData)"});
    for (int gpus : gpu_counts) {
      TrainPerfConfig config = base_config(gpus, batch);

      // BVLC Caffe: single-node ceiling.
      const auto caffe = baselines::simulate_caffe_iteration(config);

      // S-Caffe over LMDB parallel readers.
      TrainPerfConfig lmdb = config;
      lmdb.reader = ReaderBackendKind::LmdbSim;
      std::optional<core::IterationBreakdown> scaffe_l =
          core::simulate_training_iteration(lmdb);

      // S-Caffe over ImageDataLayer / Lustre.
      TrainPerfConfig lustre = config;
      lustre.reader = ReaderBackendKind::LustreImageData;
      std::optional<core::IterationBreakdown> scaffe =
          core::simulate_training_iteration(lustre);

      table.add_row({std::to_string(gpus) + " (" + std::to_string(batch) + ")", cell(caffe),
                     cell(scaffe_l), cell(scaffe)});
    }
    std::printf("\nglobal batch %d:\n", batch);
    bench::print_table(table);
  }

  // Headline speedups the paper reports: 3.3x over 16 GPUs at 128, and
  // 2.5x over 32 GPUs at 160.
  const auto at16 = core::simulate_training_iteration(base_config(16, 1024));
  const auto at32 = core::simulate_training_iteration(base_config(32, 1024));
  const auto at128 = core::simulate_training_iteration(base_config(128, 1024));
  const auto at160 = core::simulate_training_iteration(base_config(160, 1024));
  std::printf("\nheadline speedups (batch 1024):\n");
  std::printf("  128 vs 16 GPUs: %s (paper: 3.3x)\n",
              util::fmt_speedup(at16.training_time_sec / at128.training_time_sec).c_str());
  std::printf("  160 vs 32 GPUs: %s (paper: 2.5x)\n",
              util::fmt_speedup(at32.training_time_sec / at160.training_time_sec).c_str());
  return 0;
}
