// Extension ablation: ring allreduce (the NCCL/Horovod-era successor of this
// paper's design) vs S-Caffe's hierarchical reduce + broadcast. One training
// iteration moves gradients root-ward and parameters leaf-ward; a ring
// allreduce fuses both into one bandwidth-optimal pass.
#include "bench/bench_common.h"
#include "coll/algorithms.h"
#include "coll/sim_executor.h"
#include "coll/tuner.h"
#include "net/cluster.h"
#include "util/bytes.h"

using namespace scaffe;
using namespace scaffe::coll;

int main() {
  bench::print_heading("Extension ablation",
                       "ring allreduce vs HR reduce + bcast, 160 GPUs, Cluster-A (us)");

  const net::ClusterSpec cluster = net::ClusterSpec::cluster_a();
  const int nranks = 160;
  const ExecPolicy policy = ExecPolicy::hr_gdr();
  const TuningTable table = hr_tune(cluster, nranks, policy);

  util::Table out({"size", "HR reduce+bcast", "ring allreduce", "ring/HR"});
  for (std::size_t bytes = 4 * util::kKiB; bytes <= 256 * util::kMiB; bytes *= 4) {
    const std::size_t count = bytes / sizeof(float);

    const auto reduce = simulate_schedule(hr_tuned_reduce(table, nranks, count), cluster,
                                          policy);
    const auto bcast =
        simulate_schedule(binomial_bcast(nranks, 0, count), cluster, policy);
    const double hr_us = util::to_us(reduce.root_finish + bcast.total);

    const auto ring = simulate_schedule(ring_allreduce(nranks, count), cluster, policy);
    const double ring_us = util::to_us(ring.total);

    out.add_row({util::fmt_bytes(bytes), util::fmt_double(hr_us, 1),
                 util::fmt_double(ring_us, 1), util::fmt_double(ring_us / hr_us, 2)});
  }
  bench::print_table(out);
  bench::print_note(
      "the ring amortizes across all ranks for very large buffers but pays "
      "2(P-1) latency steps — exactly the trade NCCL later tuned; small and "
      "medium sizes favour the hierarchical tree+chain design");
  return 0;
}
