// Distributed sample-store benchmark: LMDB-direct vs store-fed reader
// scaling (the Figure 8 problem the store exists to solve), plus the memory
// registry's steady-state behaviour underneath the exchange.
//
// Two parts:
//
//  1. Reader-scaling sweep at {16, 64, 160, 512} readers. The LMDB-direct
//     arm registers every reader with the backend — registration throws past
//     lmdb_max_readers (64) and the modelled aggregate collapses past the
//     contention knee. The store-fed arm registers the same readers with the
//     SampleStore, which caps backend attachments at min(ranks, max_loaders):
//     the backend never sees more than 32 loaders no matter how many readers
//     train, so 160- and 512-reader configurations survive.
//
//  2. A functional exchange (real ranks, real samples over the scmpi OOB
//     plane) run twice: a warmup pass that populates the MemoryRegistry and
//     a measured steady pass. At warm steady state every exchange buffer
//     recycles — the registry miss counter must stay flat and the hit rate
//     at/above 99% — and store-fed samples are verified bitwise against the
//     backend.
//
// Writes machine-readable BENCH_datastore.json. SCAFFE_BENCH_SMOKE=1 shrinks
// the footprint for CI. SCAFFE_DATASTORE_ASSERT=1 exits nonzero unless the
// store-fed arm survives >= 160 readers where LMDB-direct dies at 64, the
// steady-state miss delta is zero, and the steady hit rate is >= 99% — the
// gate wired into scripts/check.sh.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/backend.h"
#include "data/dataset.h"
#include "data/sample_store.h"
#include "mpi/comm.h"
#include "util/memory_registry.h"
#include "util/thread_pool.h"

using namespace scaffe;

namespace {

using Clock = std::chrono::steady_clock;

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

struct ScalingRow {
  int readers = 0;
  bool direct_attach_ok = false;
  double direct_samples_per_sec = 0;
  bool store_attach_ok = false;
  int store_backend_readers = 0;
  double store_samples_per_sec = 0;
};

/// Direct-arm registration: N readers attach straight to the backend.
/// attach_reader() is the registration protocol, so the sweep exercises the
/// real cap without spawning N threads. Must run while nothing else (e.g. a
/// store's loaders) holds attachments.
void sweep_direct(data::LmdbBackend& backend, ScalingRow& row, std::size_t sample_bytes) {
  int attached = 0;
  row.direct_attach_ok = true;
  for (int r = 0; r < row.readers; ++r) {
    try {
      backend.attach_reader();
      ++attached;
    } catch (const data::ReaderLimitError&) {
      row.direct_attach_ok = false;
      break;
    }
  }
  for (int r = 0; r < attached; ++r) backend.detach_reader();
  row.direct_samples_per_sec =
      row.direct_attach_ok ? backend.aggregate_samples_per_sec(row.readers, sample_bytes)
                           : 0.0;
}

/// Store-arm registration: the same N readers attach to the store instead —
/// in-memory consumers, uncapped — while the backend only ever sees the
/// store's loaders.
void sweep_store(data::SampleStore& store, ScalingRow& row, std::size_t sample_bytes) {
  row.store_attach_ok = true;
  for (int r = 0; r < row.readers; ++r) store.attach_reader();
  row.store_backend_readers = store.loaders();
  for (int r = 0; r < row.readers; ++r) store.detach_reader();
  row.store_samples_per_sec = store.aggregate_samples_per_sec(row.readers, sample_bytes);
}

struct ExchangeResult {
  double warmup_seconds = 0;
  double steady_seconds = 0;
  std::uint64_t samples = 0;
  bool bitwise_ok = true;
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t windows_ready = 0;
  util::RegistryStats after_warmup;
  util::RegistryStats after_steady;
};

/// One store-fed exchange: every rank consumes its strided slots of
/// `warm_windows + steady_windows` windows and verifies each sample bitwise
/// against the backend's own answer. Registry stats snapshot at the
/// warmup/steady boundary and at the end, inside the SAME run — steady-state
/// means the same rank threads keeping their warm shards, exactly as a
/// long training run would.
ExchangeResult run_exchange(int ranks, data::ReadBackend& backend,
                            const data::SyntheticImageDataset& dataset,
                            std::uint64_t window, std::uint64_t warm_windows,
                            std::uint64_t steady_windows, int max_loaders) {
  ExchangeResult result;
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fallbacks{0};
  std::atomic<std::uint64_t> ready{0};
  std::atomic<bool> bitwise_ok{true};

  mpi::Runtime runtime(ranks);
  const auto start = Clock::now();
  Clock::time_point mid = start;
  Clock::time_point finish = start;
  runtime.run([&](mpi::Comm& comm) {
    data::SampleStoreConfig config;
    config.window = window;
    config.sample_floats = dataset.sample_floats();
    config.max_loaders = max_loaders;
    data::SampleStore store(comm, backend, config);
    store.attach_reader();

    std::uint64_t local = 0;
    const auto read_span = [&](std::uint64_t first_window, std::uint64_t end_window) {
      for (std::uint64_t g = first_window * window + static_cast<std::uint64_t>(comm.rank());
           g < end_window * window; g += static_cast<std::uint64_t>(comm.size())) {
        const data::Sample got = store.read(g);
        const data::Sample want = dataset.make_sample(g);
        if (got.index != want.index || got.label != want.label || got.image != want.image) {
          bitwise_ok.store(false);
        }
        ++local;
      }
    };

    read_span(0, warm_windows);
    comm.barrier();
    if (comm.rank() == 0) {
      result.after_warmup = util::MemoryRegistry::instance().stats();
      mid = Clock::now();
    }
    comm.barrier();  // nobody enters the measured phase until the snapshot lands
    read_span(warm_windows, warm_windows + steady_windows);
    comm.barrier();
    if (comm.rank() == 0) {
      result.after_steady = util::MemoryRegistry::instance().stats();
      finish = Clock::now();
    }

    samples.fetch_add(local);
    const data::SampleStoreStats stats = store.stats();
    hits.fetch_add(stats.hits);
    fallbacks.fetch_add(stats.fallbacks);
    ready.fetch_add(stats.windows_ready);
    store.detach_reader();
  });
  result.warmup_seconds = std::chrono::duration<double>(mid - start).count();
  result.steady_seconds = std::chrono::duration<double>(finish - mid).count();
  result.samples = samples.load();
  result.bitwise_ok = bitwise_ok.load();
  result.hits = hits.load();
  result.fallbacks = fallbacks.load();
  result.windows_ready = ready.load();
  return result;
}

/// The direct arm of the functional leg: the same slots read straight from
/// the backend by every rank.
double run_direct(int ranks, data::ReadBackend& backend, std::uint64_t window,
                  std::uint64_t windows) {
  mpi::Runtime runtime(ranks);
  const auto start = Clock::now();
  runtime.run([&](mpi::Comm& comm) {
    backend.attach_reader();
    for (std::uint64_t g = static_cast<std::uint64_t>(comm.rank()); g < windows * window;
         g += static_cast<std::uint64_t>(comm.size())) {
      (void)backend.read(g);
    }
    backend.detach_reader();
  });
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  util::ThreadPool::set_global_threads(1);

  const bool smoke = env_flag("SCAFFE_BENCH_SMOKE");
  const bool assert_mode = env_flag("SCAFFE_DATASTORE_ASSERT");

  const int ranks = smoke ? 8 : 16;
  const int max_loaders = 32;
  const std::uint64_t window = static_cast<std::uint64_t>(ranks) * 64;
  // Warmup must outlast pool growth: steady-state recycling needs enough
  // blocks for the instantaneous working set PLUS every thread-local shard
  // the producer->consumer circulation parks blocks in. Each warmup miss
  // grows the pool, so a long warmup converges to an allocation-free steady
  // phase.
  const std::uint64_t warm_windows = smoke ? 12 : 24;
  const std::uint64_t steady_windows = smoke ? 4 : 8;
  const std::uint64_t windows = warm_windows + steady_windows;
  const std::vector<int> reader_counts = {16, 64, 160, 512};

  data::SyntheticImageDataset dataset(window * windows, 3, 8, 8, 10);
  const std::size_t sample_bytes = dataset.sample_floats() * sizeof(float);
  data::LmdbBackend backend(dataset);  // default spec: 64-reader cap, knee at 16

  std::printf("datastore bench (%s): %d ranks, window %llu x %llu windows, %zu B/sample\n",
              smoke ? "smoke" : "full", ranks,
              static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(windows), sample_bytes);

  // --- part 1: reader-scaling sweep ----------------------------------------
  std::vector<ScalingRow> rows;
  for (int readers : reader_counts) {
    ScalingRow row;
    row.readers = readers;
    sweep_direct(backend, row, sample_bytes);  // backend unattached here
    rows.push_back(row);
  }
  {
    mpi::Runtime runtime(ranks);
    runtime.run([&](mpi::Comm& comm) {
      data::SampleStoreConfig config;
      config.window = window;
      config.sample_floats = dataset.sample_floats();
      config.max_loaders = max_loaders;
      data::SampleStore store(comm, backend, config);
      if (comm.rank() == 0) {
        for (ScalingRow& row : rows) sweep_store(store, row, sample_bytes);
      }
    });
  }
  for (const ScalingRow& row : rows) {
    std::printf(
        "%4d readers  lmdb-direct %s %12.0f samples/s   store-fed ok (%2d backend "
        "readers) %12.0f samples/s\n",
        row.readers, row.direct_attach_ok ? "ok  " : "DEAD", row.direct_samples_per_sec,
        row.store_backend_readers, row.store_samples_per_sec);
  }

  // --- part 2: functional exchange, warmup then measured steady phase -------
  const double direct_seconds = run_direct(ranks, backend, window, windows);

  const ExchangeResult exchange = run_exchange(ranks, backend, dataset, window,
                                               warm_windows, steady_windows, max_loaders);
  const util::RegistryStats& after_warmup = exchange.after_warmup;
  const util::RegistryStats& after_steady = exchange.after_steady;

  const std::uint64_t miss_delta = after_steady.misses - after_warmup.misses;
  const std::uint64_t steady_recycled = after_steady.recycled() - after_warmup.recycled();
  const double steady_hit_rate =
      steady_recycled + miss_delta == 0
          ? 0.0
          : static_cast<double>(steady_recycled) /
                static_cast<double>(steady_recycled + miss_delta);

  std::printf("functional: direct %.3f s, store warmup %.3f s, store steady %.3f s "
              "(%llu samples, %llu hits, %llu fallbacks, bitwise %s)\n",
              direct_seconds, exchange.warmup_seconds, exchange.steady_seconds,
              static_cast<unsigned long long>(exchange.samples),
              static_cast<unsigned long long>(exchange.hits),
              static_cast<unsigned long long>(exchange.fallbacks),
              exchange.bitwise_ok ? "ok" : "MISMATCH");
  std::printf("registry: steady misses +%llu (flat=%s), steady hit rate %.4f, "
              "cached %zu B, peak live %zu B\n",
              static_cast<unsigned long long>(miss_delta),
              miss_delta == 0 ? "yes" : "NO", steady_hit_rate,
              after_steady.cached_bytes, after_steady.peak_live_bytes);

  // --- verdicts --------------------------------------------------------------
  bool direct_dies_past_64 = true;
  bool store_survives_160 = true;
  for (const ScalingRow& row : rows) {
    if (row.readers <= 64 &&
        (!row.direct_attach_ok || row.direct_samples_per_sec <= 0.0)) {
      direct_dies_past_64 = false;  // direct must WORK at/below the cap
    }
    if (row.readers > 64 && row.direct_attach_ok) direct_dies_past_64 = false;
    if (row.readers >= 160 &&
        (!row.store_attach_ok || row.store_samples_per_sec <= 0.0 ||
         row.store_backend_readers > max_loaders)) {
      store_survives_160 = false;
    }
  }

  bool failed = false;
  if (!exchange.bitwise_ok) {
    std::fprintf(stderr, "DATASTORE: store-fed samples diverged from the backend\n");
    failed = true;
  }
  if (assert_mode) {
    if (!direct_dies_past_64) {
      std::fprintf(stderr,
                   "DATASTORE ASSERT FAILED: lmdb-direct arm did not die past 64 "
                   "readers (the contention problem is gone?)\n");
      failed = true;
    }
    if (!store_survives_160) {
      std::fprintf(stderr,
                   "DATASTORE ASSERT FAILED: store-fed arm did not survive 160 "
                   "readers with <= %d backend readers\n", max_loaders);
      failed = true;
    }
    if (miss_delta != 0) {
      std::fprintf(stderr,
                   "DATASTORE ASSERT FAILED: registry miss counter moved by %llu "
                   "at steady state (hot path is allocating)\n",
                   static_cast<unsigned long long>(miss_delta));
      failed = true;
    }
    if (steady_hit_rate < 0.99) {
      std::fprintf(stderr,
                   "DATASTORE ASSERT FAILED: steady registry hit rate %.4f < 0.99\n",
                   steady_hit_rate);
      failed = true;
    }
    if (exchange.fallbacks != 0) {
      std::fprintf(stderr,
                   "DATASTORE ASSERT FAILED: %llu reads fell back to the backend\n",
                   static_cast<unsigned long long>(exchange.fallbacks));
      failed = true;
    }
  }

  const char* json_path = "BENCH_datastore.json";
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"ranks\": %d,\n", ranks);
  std::fprintf(out, "  \"window\": %llu,\n", static_cast<unsigned long long>(window));
  std::fprintf(out, "  \"windows\": %llu,\n", static_cast<unsigned long long>(windows));
  std::fprintf(out, "  \"sample_bytes\": %zu,\n", sample_bytes);
  std::fprintf(out, "  \"max_loaders\": %d,\n", max_loaders);
  std::fprintf(out, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::fprintf(out,
                 "    {\"readers\": %d, \"lmdb_direct_ok\": %s, "
                 "\"lmdb_direct_samples_per_sec\": %.0f, \"store_ok\": %s, "
                 "\"store_backend_readers\": %d, \"store_samples_per_sec\": %.0f}%s\n",
                 row.readers, row.direct_attach_ok ? "true" : "false",
                 row.direct_samples_per_sec, row.store_attach_ok ? "true" : "false",
                 row.store_backend_readers, row.store_samples_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"functional\": {\"direct_seconds\": %.4f, \"warmup_seconds\": %.4f, "
               "\"steady_seconds\": %.4f, \"samples\": %llu, \"hits\": %llu, "
               "\"fallbacks\": %llu, \"windows_ready\": %llu, \"bitwise_ok\": %s},\n",
               direct_seconds, exchange.warmup_seconds, exchange.steady_seconds,
               static_cast<unsigned long long>(exchange.samples),
               static_cast<unsigned long long>(exchange.hits),
               static_cast<unsigned long long>(exchange.fallbacks),
               static_cast<unsigned long long>(exchange.windows_ready),
               exchange.bitwise_ok ? "true" : "false");
  std::fprintf(out,
               "  \"registry\": {\"steady_miss_delta\": %llu, \"steady_recycled\": %llu, "
               "\"steady_hit_rate\": %.4f, \"lifetime_misses\": %llu, "
               "\"cached_bytes\": %zu, \"peak_live_bytes\": %zu},\n",
               static_cast<unsigned long long>(miss_delta),
               static_cast<unsigned long long>(steady_recycled), steady_hit_rate,
               static_cast<unsigned long long>(after_steady.misses),
               after_steady.cached_bytes, after_steady.peak_live_bytes);
  std::fprintf(out, "  \"direct_dies_past_64\": %s,\n",
               direct_dies_past_64 ? "true" : "false");
  std::fprintf(out, "  \"store_survives_160\": %s\n", store_survives_160 ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return failed ? 1 : 0;
}
