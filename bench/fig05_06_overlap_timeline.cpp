// Figures 5 and 6, reconstructed as data: the paper draws the multi-stage
// overlapped data propagation (Ibcast under Forward) and the helper-thread
// overlapped gradient aggregation (Reduce under Backward) as timelines.
// This bench renders exactly those diagrams from the performance model,
// for GoogLeNet at 32 GPUs, one digit per model layer.
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/perf_model.h"
#include "models/descriptors.h"
#include "util/duration.h"

using namespace scaffe;
using core::PhaseSegment;
using core::TrainPerfConfig;

namespace {

void render(const char* title, const std::vector<PhaseSegment>& segments,
            PhaseSegment::Kind comm_kind, PhaseSegment::Kind compute_kind,
            const char* comm_label, const char* compute_label) {
  util::TimeNs horizon = 0;
  for (const PhaseSegment& segment : segments) horizon = std::max(horizon, segment.end);
  if (horizon == 0) return;

  constexpr int kWidth = 100;
  const double scale = static_cast<double>(kWidth) / static_cast<double>(horizon);
  auto lane_for = [&](PhaseSegment::Kind kind) {
    std::string lane(kWidth, '.');
    for (const PhaseSegment& segment : segments) {
      if (segment.kind != kind) continue;
      const int from = std::clamp(static_cast<int>(segment.start * scale), 0, kWidth - 1);
      const int to =
          std::clamp(static_cast<int>(segment.end * scale) - 1, from, kWidth - 1);
      const char glyph = static_cast<char>('0' + segment.layer % 10);
      for (int i = from; i <= to; ++i) lane[static_cast<std::size_t>(i)] = glyph;
    }
    return lane;
  };

  std::printf("\n%s  (span %s)\n", title, util::fmt_time(horizon).c_str());
  std::printf("%-9s |%s|\n", comm_label, lane_for(comm_kind).c_str());
  std::printf("%-9s |%s|\n", compute_label, lane_for(compute_kind).c_str());
  std::printf("          digits = model layer index (mod 10); . = idle\n");
}

}  // namespace

int main() {
  bench::print_heading("Figures 5 & 6 (reconstructed)",
                       "per-layer overlap timelines, GoogLeNet, 32 GPUs, Cluster-A");

  TrainPerfConfig config;
  config.model = models::ModelDesc::googlenet();
  config.cluster = net::ClusterSpec::cluster_a();
  config.gpus = 32;
  config.global_batch = 1024;
  config.variant = core::Variant::SCOBR;
  config.reduce = core::ReduceAlgo::cb(16);
  config.capture_timeline = true;

  const auto multi_stage = core::simulate_training_iteration(config);
  render("Figure 5: multi-stage Ibcasts drained just-in-time under the Forward pass",
         multi_stage.timeline, PhaseSegment::Kind::Bcast, PhaseSegment::Kind::Forward,
         "Ibcast", "Forward");
  render("Figure 6: helper-thread per-layer reductions under the Backward pass",
         multi_stage.timeline, PhaseSegment::Kind::Reduce, PhaseSegment::Kind::Backward,
         "Reduce", "Backward");

  config.naive_nbc = true;
  const auto naive = core::simulate_training_iteration(config);
  render("Figure 4 (for contrast): naive one-ahead NBC stalls the Forward pass",
         naive.timeline, PhaseSegment::Kind::Bcast, PhaseSegment::Kind::Forward, "Ibcast",
         "Forward");

  std::printf("\nexposed propagation: naive %s vs multi-stage %s; exposed aggregation "
              "(SC-OBR): %s\n",
              util::fmt_time(naive.propagation_exposed).c_str(),
              util::fmt_time(multi_stage.propagation_exposed).c_str(),
              util::fmt_time(multi_stage.aggregation_exposed).c_str());
  return 0;
}
